//! R-tree over object MBBs: the *filtering* step of both the Filter-Refine
//! and Filter-Progressive-Refine paradigms (paper §4).
//!
//! Supports STR bulk loading, incremental insertion with quadratic split,
//! window (intersection) queries, the within-query traversal that splits
//! results into *definite* hits and *candidates* using MINDIST/MAXDIST
//! bounds (§4.2), and the nearest-neighbour candidate collection with
//! distance ranges (§4.3, after Roussopoulos et al.).

use tripro_geom::{Aabb, DistRange};

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 4;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { bb: Aabb, entries: Vec<(Aabb, T)> },
    Inner { bb: Aabb, children: Vec<Node<T>> },
}

impl<T: Clone> Node<T> {
    fn bb(&self) -> &Aabb {
        match self {
            Node::Leaf { bb, .. } | Node::Inner { bb, .. } => bb,
        }
    }

    fn recompute_bb(&mut self) {
        match self {
            Node::Leaf { bb, entries } => {
                *bb = entries.iter().fold(Aabb::EMPTY, |a, (b, _)| a.union(b));
            }
            Node::Inner { bb, children } => {
                *bb = children.iter().fold(Aabb::EMPTY, |a, c| a.union(c.bb()));
            }
        }
    }
}

/// An R-tree mapping bounding boxes to values.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            root: Node::Leaf {
                bb: Aabb::EMPTY,
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of everything stored.
    pub fn bounds(&self) -> Aabb {
        *self.root.bb()
    }

    /// Bulk-load with the Sort-Tile-Recursive algorithm: packs entries into
    /// fully utilised leaves with good spatial locality. Preferred for the
    /// static datasets 3DPro queries.
    pub fn bulk_load(mut items: Vec<(Aabb, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new();
        }
        // STR: tile along x, then y, then z.
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let s = (leaf_count as f64).powf(1.0 / 3.0).ceil() as usize; // slabs per axis
        let key = |bb: &Aabb, axis: usize| bb.center()[axis];
        items.sort_by(|a, b| key(&a.0, 0).total_cmp(&key(&b.0, 0)));
        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        let x_slab = len.div_ceil(s);
        for xs in items.chunks_mut(x_slab.max(1)) {
            xs.sort_by(|a, b| key(&a.0, 1).total_cmp(&key(&b.0, 1)));
            let y_slab = xs.len().div_ceil(s);
            for ys in xs.chunks_mut(y_slab.max(1)) {
                ys.sort_by(|a, b| key(&a.0, 2).total_cmp(&key(&b.0, 2)));
                for zs in ys.chunks(MAX_ENTRIES) {
                    let mut leaf = Node::Leaf {
                        bb: Aabb::EMPTY,
                        entries: zs.to_vec(),
                    };
                    leaf.recompute_bb();
                    leaves.push(leaf);
                }
            }
        }
        // Pack upper levels.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            for group in level.chunks(MAX_ENTRIES) {
                let mut inner = Node::Inner {
                    bb: Aabb::EMPTY,
                    children: group.to_vec(),
                };
                inner.recompute_bb();
                next.push(inner);
            }
            level = next;
        }
        match level.pop() {
            Some(root) => Self { root, len },
            None => Self::new(),
        }
    }

    /// Insert one entry (R-tree with quadratic split).
    pub fn insert(&mut self, bb: Aabb, value: T) {
        self.len += 1;
        if let Some((a, b)) = Self::insert_rec(&mut self.root, bb, value) {
            self.root = Node::Inner {
                bb: a.bb().union(b.bb()),
                children: vec![a, b],
            };
        }
    }

    fn insert_rec(node: &mut Node<T>, bb: Aabb, value: T) -> Option<(Node<T>, Node<T>)> {
        match node {
            Node::Leaf { bb: nbb, entries } => {
                entries.push((bb, value));
                *nbb = nbb.union(&bb);
                if entries.len() > MAX_ENTRIES {
                    let (l, r) = quadratic_split(std::mem::take(entries), |e| e.0);
                    let mut left = Node::Leaf {
                        bb: Aabb::EMPTY,
                        entries: l,
                    };
                    let mut right = Node::Leaf {
                        bb: Aabb::EMPTY,
                        entries: r,
                    };
                    left.recompute_bb();
                    right.recompute_bb();
                    return Some((left, right));
                }
                None
            }
            Node::Inner { bb: nbb, children } => {
                *nbb = nbb.union(&bb);
                // Choose the child whose bb needs least enlargement.
                let mut best = 0;
                let mut best_cost = f64::INFINITY;
                for (i, c) in children.iter().enumerate() {
                    let grown = c.bb().union(&bb);
                    let cost = grown.volume() - c.bb().volume();
                    let tie = c.bb().volume();
                    if cost < best_cost
                        || (tripro_geom::is_exactly(cost, best_cost)
                            && tie < children[best].bb().volume())
                    {
                        best = i;
                        best_cost = cost;
                    }
                    let _ = tie;
                }
                if let Some((a, b)) = Self::insert_rec(&mut children[best], bb, value) {
                    children.swap_remove(best);
                    children.push(a);
                    children.push(b);
                    if children.len() > MAX_ENTRIES {
                        let (l, r) = quadratic_split(std::mem::take(children), |c| *c.bb());
                        let mut left = Node::Inner {
                            bb: Aabb::EMPTY,
                            children: l,
                        };
                        let mut right = Node::Inner {
                            bb: Aabb::EMPTY,
                            children: r,
                        };
                        left.recompute_bb();
                        right.recompute_bb();
                        return Some((left, right));
                    }
                }
                None
            }
        }
    }

    /// All values whose MBB intersects `window` (the intersection-join
    /// filter step, §4.1).
    pub fn query_intersects(&self, window: &Aabb) -> Vec<T> {
        let mut out = Vec::new();
        self.visit_intersects(window, &mut |v: &T, _bb| out.push(v.clone()));
        out
    }

    /// Visit every `(value, bb)` whose MBB intersects `window`.
    pub fn visit_intersects(&self, window: &Aabb, f: &mut impl FnMut(&T, &Aabb)) {
        let mut stack = vec![&self.root];
        while let Some(n) = stack.pop() {
            if !n.bb().intersects(window) {
                continue;
            }
            match n {
                Node::Leaf { entries, .. } => {
                    for (bb, v) in entries {
                        if bb.intersects(window) {
                            f(v, bb);
                        }
                    }
                }
                Node::Inner { children, .. } => stack.extend(children.iter()),
            }
        }
    }

    /// Within-query filter (paper §4.2): split the dataset against `target`
    /// at distance `d` into objects that are *definitely* within `d`
    /// (`MAXDIST ≤ d`, no geometry needed) and *candidates*
    /// (`MINDIST ≤ d < MAXDIST`, need refinement). Everything else is
    /// pruned by `MINDIST > d`, including whole subtrees.
    pub fn within(&self, target: &Aabb, d: f64) -> WithinResult<T> {
        let mut res = WithinResult {
            definite: Vec::new(),
            candidates: Vec::new(),
        };
        let mut stack = vec![&self.root];
        while let Some(n) = stack.pop() {
            if n.bb().min_dist(target) > d {
                continue; // whole subtree too far
            }
            if n.bb().max_dist(target) <= d {
                // Whole subtree definitely within (covers the paper's
                // r.MAXDIST ≤ d shortcut for inner nodes).
                collect_all(n, &mut res.definite);
                continue;
            }
            match n {
                Node::Leaf { entries, .. } => {
                    for (bb, v) in entries {
                        let r = bb.dist_range(target);
                        if r.min > d {
                            continue;
                        }
                        if r.max <= d {
                            res.definite.push(v.clone());
                        } else {
                            res.candidates.push(v.clone());
                        }
                    }
                }
                Node::Inner { children, .. } => stack.extend(children.iter()),
            }
        }
        res
    }

    /// Nearest-neighbour candidate collection (paper §4.3): best-first
    /// traversal by MINDIST, pruning by the running MINMAXDIST. The result
    /// contains every object whose distance range to `target` overlaps the
    /// smallest MAXDIST seen, each with its `[MINDIST, MAXDIST]` range.
    pub fn nn_candidates(&self, target: &Aabb) -> Vec<(T, DistRange)> {
        self.knn_candidates(target, 1)
    }

    /// k-nearest-neighbour candidate collection: keeps the pruning threshold
    /// at the k-th smallest MAXDIST so at least `k` true nearest neighbours
    /// survive filtering (§4.3's kNN note).
    pub fn knn_candidates(&self, target: &Aabb, k: usize) -> Vec<(T, DistRange)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        if self.is_empty() || k == 0 {
            return Vec::new();
        }

        #[derive(PartialEq)]
        struct Key(f64);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Key {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&o.0)
            }
        }

        // Best-first over nodes by MINDIST.
        let mut heap: BinaryHeap<(Reverse<Key>, usize)> = BinaryHeap::new();
        let mut nodes: Vec<&Node<T>> = vec![&self.root];
        heap.push((Reverse(Key(self.root.bb().min_dist(target))), 0));

        // Track the k smallest MAXDISTs seen so far (max-heap of size k).
        let mut kth: BinaryHeap<Key> = BinaryHeap::new();
        let mut found: Vec<(T, DistRange)> = Vec::new();

        while let Some((Reverse(Key(mind)), idx)) = heap.pop() {
            let threshold = if kth.len() >= k {
                kth.peek().map_or(f64::INFINITY, |t| t.0)
            } else {
                f64::INFINITY
            };
            if mind > threshold {
                break; // every remaining node is too far
            }
            match nodes[idx] {
                Node::Leaf { entries, .. } => {
                    for (bb, v) in entries {
                        let r = bb.dist_range(target);
                        let threshold = if kth.len() >= k {
                            kth.peek().map_or(f64::INFINITY, |t| t.0)
                        } else {
                            f64::INFINITY
                        };
                        if r.min > threshold {
                            continue;
                        }
                        found.push((v.clone(), r));
                        kth.push(Key(r.max));
                        if kth.len() > k {
                            kth.pop();
                        }
                    }
                }
                Node::Inner { children, .. } => {
                    for c in children {
                        let d = c.bb().min_dist(target);
                        let threshold = if kth.len() >= k {
                            kth.peek().map_or(f64::INFINITY, |t| t.0)
                        } else {
                            f64::INFINITY
                        };
                        if d <= threshold {
                            nodes.push(c);
                            heap.push((Reverse(Key(d)), nodes.len() - 1));
                        }
                    }
                }
            }
        }

        // Final prune with the settled threshold.
        let threshold = if kth.len() >= k {
            kth.peek().map_or(f64::INFINITY, |t| t.0)
        } else {
            f64::INFINITY
        };
        found.retain(|(_, r)| r.min <= threshold);
        found
    }

    /// Height of the tree (1 for a single leaf); exposed for tests.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = &self.root;
        while let Node::Inner { children, .. } = n {
            h += 1;
            n = &children[0];
        }
        h
    }

    /// Structural statistics for tuning and diagnostics.
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats {
            height: self.height(),
            ..Default::default()
        };
        let mut stack = vec![&self.root];
        while let Some(n) = stack.pop() {
            match n {
                Node::Leaf { entries, .. } => {
                    s.leaves += 1;
                    s.entries += entries.len();
                    s.min_leaf_fill = s.min_leaf_fill.min(entries.len());
                    s.max_leaf_fill = s.max_leaf_fill.max(entries.len());
                }
                Node::Inner { children, .. } => {
                    s.inner_nodes += 1;
                    // Overlap volume among sibling boxes, a quality signal:
                    // bulk-loaded trees should show little.
                    for i in 0..children.len() {
                        for j in (i + 1)..children.len() {
                            let a = children[i].bb();
                            let b = children[j].bb();
                            if a.intersects(b) {
                                let lo = a.lo.max(b.lo);
                                let hi = a.hi.min(b.hi);
                                s.sibling_overlap_volume += Aabb::from_corners(lo, hi).volume();
                            }
                        }
                    }
                    stack.extend(children.iter());
                }
            }
        }
        if s.leaves == 0 {
            s.min_leaf_fill = 0;
        }
        s
    }
}

/// Structural statistics of an R-tree (see [`RTree::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    pub height: usize,
    pub leaves: usize,
    pub inner_nodes: usize,
    pub entries: usize,
    pub min_leaf_fill: usize,
    pub max_leaf_fill: usize,
    /// Total pairwise overlap volume among sibling node boxes.
    pub sibling_overlap_volume: f64,
}

impl Default for TreeStats {
    fn default() -> Self {
        Self {
            height: 0,
            leaves: 0,
            inner_nodes: 0,
            entries: 0,
            min_leaf_fill: usize::MAX,
            max_leaf_fill: 0,
            sibling_overlap_volume: 0.0,
        }
    }
}

fn collect_all<T: Clone>(node: &Node<T>, out: &mut Vec<T>) {
    match node {
        Node::Leaf { entries, .. } => out.extend(entries.iter().map(|(_, v)| v.clone())),
        Node::Inner { children, .. } => {
            for c in children {
                collect_all(c, out);
            }
        }
    }
}

/// Result of the within-query filter step.
#[derive(Debug, Clone)]
pub struct WithinResult<T> {
    /// Objects guaranteed within the distance by MBB bounds alone.
    pub definite: Vec<T>,
    /// Objects needing geometric refinement.
    pub candidates: Vec<T>,
}

/// Quadratic split (Guttman): pick the pair wasting the most area as seeds,
/// then assign greedily by enlargement.
fn quadratic_split<E>(mut entries: Vec<E>, bb_of: impl Fn(&E) -> Aabb) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() >= 2);
    // Seed pair: maximal dead volume.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let u = bb_of(&entries[i]).union(&bb_of(&entries[j]));
            let waste = u.volume() - bb_of(&entries[i]).volume() - bb_of(&entries[j]).volume();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove the higher index first to keep s1 valid.
    let e2 = entries.swap_remove(s2);
    let e1 = entries.swap_remove(s1);
    let mut bb1 = bb_of(&e1);
    let mut bb2 = bb_of(&e2);
    let mut g1 = vec![e1];
    let mut g2 = vec![e2];
    let remaining = entries.len();
    for (i, e) in entries.into_iter().enumerate() {
        let left = remaining - i;
        // Force-assign to honour minimum fill.
        if g1.len() + left <= MIN_ENTRIES {
            bb1 = bb1.union(&bb_of(&e));
            g1.push(e);
            continue;
        }
        if g2.len() + left <= MIN_ENTRIES {
            bb2 = bb2.union(&bb_of(&e));
            g2.push(e);
            continue;
        }
        let grow1 = bb1.union(&bb_of(&e)).volume() - bb1.volume();
        let grow2 = bb2.union(&bb_of(&e)).volume() - bb2.volume();
        if grow1 <= grow2 {
            bb1 = bb1.union(&bb_of(&e));
            g1.push(e);
        } else {
            bb2 = bb2.union(&bb_of(&e));
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;

    fn grid_boxes(n: usize) -> Vec<(Aabb, usize)> {
        // n³ unit boxes at integer offsets spaced 3 apart.
        let mut out = Vec::new();
        let mut id = 0;
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    let lo = vec3(3.0 * x as f64, 3.0 * y as f64, 3.0 * z as f64);
                    out.push((Aabb::from_corners(lo, lo + vec3(1.0, 1.0, 1.0)), id));
                    id += 1;
                }
            }
        }
        out
    }

    #[test]
    fn bulk_load_and_query() {
        let boxes = grid_boxes(5);
        let t = RTree::bulk_load(boxes.clone());
        assert_eq!(t.len(), 125);
        // Window covering the first 2x2x2 block.
        let w = Aabb::from_corners(vec3(0.0, 0.0, 0.0), vec3(4.0, 4.0, 4.0));
        let mut hits = t.query_intersects(&w);
        hits.sort_unstable();
        let mut expected: Vec<usize> = boxes
            .iter()
            .filter(|(bb, _)| bb.intersects(&w))
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(hits, expected);
        assert_eq!(hits.len(), 8);
    }

    #[test]
    fn insert_matches_bulk_results() {
        let boxes = grid_boxes(4);
        let bulk = RTree::bulk_load(boxes.clone());
        let mut inc = RTree::new();
        for (bb, id) in boxes.clone() {
            inc.insert(bb, id);
        }
        assert_eq!(inc.len(), bulk.len());
        for w in [
            Aabb::from_corners(vec3(0.0, 0.0, 0.0), vec3(100.0, 100.0, 100.0)),
            Aabb::from_corners(vec3(2.0, 2.0, 2.0), vec3(5.0, 5.0, 5.0)),
            Aabb::from_corners(vec3(-5.0, -5.0, -5.0), vec3(-1.0, -1.0, -1.0)),
        ] {
            let mut a = bulk.query_intersects(&w);
            let mut b = inc.query_intersects(&w);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_tree() {
        let t: RTree<usize> = RTree::new();
        assert!(t.is_empty());
        let w = Aabb::from_corners(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0));
        assert!(t.query_intersects(&w).is_empty());
        assert!(t.nn_candidates(&w).is_empty());
        let r = t.within(&w, 10.0);
        assert!(r.definite.is_empty() && r.candidates.is_empty());
    }

    #[test]
    fn within_splits_definite_and_candidates() {
        let boxes = grid_boxes(4);
        let t = RTree::bulk_load(boxes.clone());
        let target = Aabb::from_corners(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0));
        let d = 4.0;
        let r = t.within(&target, d);
        // Brute-force check.
        for (bb, id) in &boxes {
            let range = bb.dist_range(&target);
            if range.max <= d {
                assert!(r.definite.contains(id), "box {id} should be definite");
            } else if range.min <= d {
                assert!(r.candidates.contains(id), "box {id} should be candidate");
            } else {
                assert!(!r.definite.contains(id) && !r.candidates.contains(id));
            }
        }
    }

    #[test]
    fn nn_candidates_contain_true_nearest() {
        let boxes = grid_boxes(5);
        let t = RTree::bulk_load(boxes.clone());
        // A probe near box id for (1,1,1): center at (3.5+..).
        let target = Aabb::from_corners(vec3(3.2, 3.2, 3.2), vec3(3.8, 3.8, 3.8));
        let cands = t.nn_candidates(&target);
        assert!(!cands.is_empty());
        // Brute force: true nearest by MINDIST must be among candidates.
        let brute_nearest = boxes
            .iter()
            .min_by(|a, b| a.0.min_dist(&target).total_cmp(&b.0.min_dist(&target)))
            .unwrap()
            .1;
        assert!(
            cands.iter().any(|(id, _)| *id == brute_nearest),
            "true nearest {brute_nearest} missing from candidate set"
        );
        // All candidate ranges must overlap the minimal MAXDIST.
        let minmax = cands
            .iter()
            .map(|(_, r)| r.max)
            .fold(f64::INFINITY, f64::min);
        for (_, r) in &cands {
            assert!(r.min <= minmax);
        }
    }

    #[test]
    fn knn_keeps_at_least_k() {
        let boxes = grid_boxes(5);
        let t = RTree::bulk_load(boxes);
        let target = Aabb::from_point(vec3(7.0, 7.0, 7.0));
        for k in [1usize, 3, 8] {
            let cands = t.knn_candidates(&target, k);
            assert!(cands.len() >= k, "k={k} got {}", cands.len());
        }
    }

    #[test]
    fn bulk_load_height_is_logarithmic() {
        let t = RTree::bulk_load(grid_boxes(10)); // 1000 entries
                                                  // 1000/16 = 63 leaves, /16 = 4, /16 = 1 → height 4 (leaf + 3).
        assert!(t.height() <= 4, "height {}", t.height());
    }

    #[test]
    fn bounds_cover_everything() {
        let boxes = grid_boxes(3);
        let t = RTree::bulk_load(boxes.clone());
        let b = t.bounds();
        for (bb, _) in &boxes {
            assert!(b.contains_box(bb));
        }
    }

    #[test]
    fn single_entry_tree() {
        let bb = Aabb::from_corners(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0));
        let t = RTree::bulk_load(vec![(bb, 42usize)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_intersects(&bb), vec![42]);
        let nn = t.nn_candidates(&Aabb::from_point(vec3(9.0, 9.0, 9.0)));
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].0, 42);
    }

    #[test]
    fn stats_account_for_everything() {
        let t = RTree::bulk_load(grid_boxes(6));
        let s = t.stats();
        assert_eq!(s.entries, 216);
        assert_eq!(s.height, t.height());
        assert!(s.leaves >= 216 / 16);
        assert!(s.min_leaf_fill >= 1 && s.max_leaf_fill <= 16);
        // Overlap is a diagnostic, not an invariant: STR leaves tile
        // cleanly but parent runs can straddle slab boundaries. Just demand
        // sane values for both build paths.
        assert!(s.sibling_overlap_volume.is_finite() && s.sibling_overlap_volume >= 0.0);
        let mut inc = RTree::new();
        for (bb, id) in grid_boxes(6) {
            inc.insert(bb, id);
        }
        let si = inc.stats();
        assert_eq!(si.entries, 216);
        assert!(si.sibling_overlap_volume.is_finite() && si.sibling_overlap_volume >= 0.0);
        // Empty tree stats are sane.
        let e: RTree<usize> = RTree::new();
        assert_eq!(e.stats().entries, 0);
        assert_eq!(e.stats().min_leaf_fill, 0);
    }

    #[test]
    fn many_inserts_trigger_splits() {
        let mut t = RTree::new();
        for (bb, id) in grid_boxes(6) {
            t.insert(bb, id);
        }
        assert_eq!(t.len(), 216);
        assert!(t.height() >= 2);
        let w = t.bounds();
        assert_eq!(t.query_intersects(&w).len(), 216);
    }
}
