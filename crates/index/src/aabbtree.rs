//! AABB-tree (BVH) over the triangles of one decoded polyhedron — the
//! intra-geometry acceleration of paper §5.1: it reduces face-pair
//! evaluation from `O(N·N')` to roughly `O(N·log N')` for both intersection
//! detection and distance calculation.

use std::sync::Arc;
use tripro_geom::{tri_tri_dist2, tri_tri_intersect, Aabb, Triangle};

const LEAF_SIZE: usize = 4;

#[derive(Debug, Clone)]
struct BvhNode {
    bb: Aabb,
    /// Leaf: `start..end` into `order`. Inner: child indices.
    kind: NodeKind,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { start: u32, end: u32 },
    Inner { left: u32, right: u32 },
}

/// A static bounding-volume hierarchy over a triangle list.
///
/// The triangle buffer is held behind an [`Arc`] and the tree itself is
/// index-based (leaves store ranges into a permutation array), so building
/// over an already-shared buffer — the decode cache's per-LOD faces — is
/// zero-copy: see [`AabbTree::build_shared`].
#[derive(Debug, Clone)]
pub struct AabbTree {
    tris: Arc<Vec<Triangle>>,
    /// Permutation of triangle indices grouped by leaf.
    order: Vec<u32>,
    nodes: Vec<BvhNode>,
    root: u32,
}

impl AabbTree {
    /// Build by recursive median split on the longest centroid axis.
    pub fn build(tris: Vec<Triangle>) -> Self {
        Self::build_shared(Arc::new(tris))
    }

    /// Build over a shared triangle buffer without copying it. The nodes
    /// reference faces by index, so the only per-tree allocations are the
    /// permutation array and the node list.
    pub fn build_shared(tris: Arc<Vec<Triangle>>) -> Self {
        assert!(
            !tris.is_empty(),
            "cannot build an AABB-tree over zero faces"
        );
        let mut order: Vec<u32> = (0..tris.len() as u32).collect();
        let mut nodes = Vec::with_capacity(2 * tris.len() / LEAF_SIZE + 2);
        let centroids: Vec<_> = tris.iter().map(|t| t.centroid()).collect();
        let root = Self::build_rec(&tris, &centroids, &mut order, 0, tris.len(), &mut nodes);
        Self {
            tris,
            order,
            nodes,
            root,
        }
    }

    fn build_rec(
        tris: &[Triangle],
        centroids: &[tripro_geom::Vec3],
        order: &mut [u32],
        start: usize,
        end: usize,
        nodes: &mut Vec<BvhNode>,
    ) -> u32 {
        let mut bb = Aabb::EMPTY;
        for &i in &order[start..end] {
            bb = bb.union(&tris[i as usize].aabb());
        }
        if end - start <= LEAF_SIZE {
            nodes.push(BvhNode {
                bb,
                kind: NodeKind::Leaf {
                    start: start as u32,
                    end: end as u32,
                },
            });
            return (nodes.len() - 1) as u32;
        }
        // Split on the longest axis of the centroid bounds.
        let mut cb = Aabb::EMPTY;
        for &i in &order[start..end] {
            cb.expand(centroids[i as usize]);
        }
        let axis = cb.extent().dominant_axis();
        let mid = (start + end) / 2;
        order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            centroids[a as usize][axis].total_cmp(&centroids[b as usize][axis])
        });
        let left = Self::build_rec(tris, centroids, order, start, mid, nodes);
        let right = Self::build_rec(tris, centroids, order, mid, end, nodes);
        nodes.push(BvhNode {
            bb,
            kind: NodeKind::Inner { left, right },
        });
        (nodes.len() - 1) as u32
    }

    /// Number of triangles.
    pub fn len(&self) -> usize {
        self.tris.len()
    }

    /// Never empty (construction requires ≥ 1 triangle).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Root bounding box.
    pub fn bounds(&self) -> Aabb {
        self.nodes[self.root as usize].bb
    }

    /// The stored triangles (in input order).
    pub fn triangles(&self) -> &[Triangle] {
        &self.tris
    }

    /// The shared triangle buffer (the same allocation passed to
    /// [`AabbTree::build_shared`]).
    pub fn shared_triangles(&self) -> &Arc<Vec<Triangle>> {
        &self.tris
    }

    /// `true` if any triangle of `self` intersects any triangle of `other`.
    /// Counts tri–tri tests into `tests` for the paper's cost accounting.
    pub fn intersects_tree(&self, other: &AabbTree, tests: &mut u64) -> bool {
        let mut stack = vec![(self.root, other.root)];
        while let Some((a, b)) = stack.pop() {
            let na = &self.nodes[a as usize];
            let nb = &other.nodes[b as usize];
            if !na.bb.intersects(&nb.bb) {
                continue;
            }
            match (&na.kind, &nb.kind) {
                (NodeKind::Leaf { start: s1, end: e1 }, NodeKind::Leaf { start: s2, end: e2 }) => {
                    for &i in &self.order[*s1 as usize..*e1 as usize] {
                        for &j in &other.order[*s2 as usize..*e2 as usize] {
                            *tests += 1;
                            if tri_tri_intersect(&self.tris[i as usize], &other.tris[j as usize]) {
                                return true;
                            }
                        }
                    }
                }
                (NodeKind::Inner { left, right }, _) => {
                    stack.push((*left, b));
                    stack.push((*right, b));
                }
                (_, NodeKind::Inner { left, right }) => {
                    stack.push((a, *left));
                    stack.push((a, *right));
                }
            }
        }
        false
    }

    /// `true` if any triangle intersects `tri`.
    pub fn intersects_triangle(&self, tri: &Triangle, tests: &mut u64) -> bool {
        let tbb = tri.aabb();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n as usize];
            if !node.bb.intersects(&tbb) {
                continue;
            }
            match &node.kind {
                NodeKind::Leaf { start, end } => {
                    for &i in &self.order[*start as usize..*end as usize] {
                        *tests += 1;
                        if tri_tri_intersect(&self.tris[i as usize], tri) {
                            return true;
                        }
                    }
                }
                NodeKind::Inner { left, right } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        false
    }

    /// Minimum squared distance between the two triangle sets, by best-first
    /// branch-and-bound on node-pair MINDIST. `upper` optionally seeds the
    /// bound (pass `f64::INFINITY` for an exact minimum); the traversal also
    /// short-circuits to 0 on contact.
    pub fn min_dist2_tree(&self, other: &AabbTree, upper: f64, tests: &mut u64) -> f64 {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Key(f64);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Key {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&o.0)
            }
        }

        let mut best = upper;
        let mut heap = BinaryHeap::new();
        let d0 = self.nodes[self.root as usize]
            .bb
            .min_dist2(&other.nodes[other.root as usize].bb);
        heap.push((Reverse(Key(d0)), self.root, other.root));
        while let Some((Reverse(Key(lb)), a, b)) = heap.pop() {
            if lb >= best {
                break; // all remaining pairs are worse
            }
            let na = &self.nodes[a as usize];
            let nb = &other.nodes[b as usize];
            match (&na.kind, &nb.kind) {
                (NodeKind::Leaf { start: s1, end: e1 }, NodeKind::Leaf { start: s2, end: e2 }) => {
                    for &i in &self.order[*s1 as usize..*e1 as usize] {
                        for &j in &other.order[*s2 as usize..*e2 as usize] {
                            *tests += 1;
                            let d2 = tri_tri_dist2(&self.tris[i as usize], &other.tris[j as usize]);
                            if d2 < best {
                                best = d2;
                                if tripro_geom::is_exactly_zero(best) {
                                    return 0.0;
                                }
                            }
                        }
                    }
                }
                (NodeKind::Inner { left, right }, _) => {
                    for &c in &[*left, *right] {
                        let d = self.nodes[c as usize].bb.min_dist2(&nb.bb);
                        if d < best {
                            heap.push((Reverse(Key(d)), c, b));
                        }
                    }
                }
                (_, NodeKind::Inner { left, right }) => {
                    for &c in &[*left, *right] {
                        let d = na.bb.min_dist2(&other.nodes[c as usize].bb);
                        if d < best {
                            heap.push((Reverse(Key(d)), a, c));
                        }
                    }
                }
            }
        }
        best
    }

    /// Minimum squared distance from a point to the triangle set.
    pub fn min_dist2_point(&self, p: tripro_geom::Vec3) -> f64 {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Key(f64);
        impl Eq for Key {}
        impl PartialOrd for Key {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Key {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&o.0)
            }
        }
        let mut best = f64::INFINITY;
        let mut heap = BinaryHeap::new();
        heap.push((
            Reverse(Key(self.nodes[self.root as usize].bb.min_dist2_point(p))),
            self.root,
        ));
        while let Some((Reverse(Key(lb)), n)) = heap.pop() {
            if lb >= best {
                break;
            }
            let node = &self.nodes[n as usize];
            match &node.kind {
                NodeKind::Leaf { start, end } => {
                    for &i in &self.order[*start as usize..*end as usize] {
                        let d2 =
                            tripro_geom::distance::point_triangle_dist2(p, &self.tris[i as usize]);
                        best = best.min(d2);
                    }
                }
                NodeKind::Inner { left, right } => {
                    for &c in &[*left, *right] {
                        let d = self.nodes[c as usize].bb.min_dist2_point(p);
                        if d < best {
                            heap.push((Reverse(Key(d)), c));
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::{vec3, Vec3};

    /// A z=constant square grid of triangles covering [0,n]×[0,n].
    fn sheet(n: usize, z: f64) -> Vec<Triangle> {
        let mut tris = Vec::new();
        for x in 0..n {
            for y in 0..n {
                let p = vec3(x as f64, y as f64, z);
                tris.push(Triangle::new(
                    p,
                    p + vec3(1.0, 0.0, 0.0),
                    p + vec3(0.0, 1.0, 0.0),
                ));
                tris.push(Triangle::new(
                    p + vec3(1.0, 0.0, 0.0),
                    p + vec3(1.0, 1.0, 0.0),
                    p + vec3(0.0, 1.0, 0.0),
                ));
            }
        }
        tris
    }

    #[test]
    fn build_and_bounds() {
        let t = AabbTree::build(sheet(8, 0.0));
        assert_eq!(t.len(), 128);
        let b = t.bounds();
        assert_eq!(b.lo, vec3(0.0, 0.0, 0.0));
        assert_eq!(b.hi, vec3(8.0, 8.0, 0.0));
    }

    #[test]
    fn parallel_sheets_distance() {
        let a = AabbTree::build(sheet(8, 0.0));
        let b = AabbTree::build(sheet(8, 3.0));
        let mut tests = 0;
        let d2 = a.min_dist2_tree(&b, f64::INFINITY, &mut tests);
        assert!((d2 - 9.0).abs() < 1e-12);
        // Branch-and-bound must evaluate far fewer than all 128*128 pairs.
        assert!(tests < 128 * 128 / 4, "tests = {tests}");
    }

    #[test]
    fn intersecting_sheets() {
        let a = AabbTree::build(sheet(8, 0.0));
        // A vertical triangle poking through the middle of the sheet.
        let poker = Triangle::new(
            vec3(4.2, 4.2, -1.0),
            vec3(4.3, 4.2, 1.0),
            vec3(4.2, 4.4, 1.0),
        );
        let b = AabbTree::build(vec![poker]);
        let mut tests = 0;
        assert!(a.intersects_tree(&b, &mut tests));
        assert!(a.intersects_triangle(&poker, &mut tests));
        let mut t2 = 0;
        assert_eq!(a.min_dist2_tree(&b, f64::INFINITY, &mut t2), 0.0);
    }

    #[test]
    fn disjoint_sheets_do_not_intersect() {
        let a = AabbTree::build(sheet(4, 0.0));
        let b = AabbTree::build(sheet(4, 5.0));
        let mut tests = 0;
        assert!(!a.intersects_tree(&b, &mut tests));
        assert_eq!(tests, 0, "bounding boxes alone should separate the sheets");
    }

    #[test]
    fn distance_matches_brute_force() {
        // Two small skewed sheets.
        let mut a_tris = sheet(3, 0.0);
        for t in &mut a_tris {
            *t = Triangle::new(t.a, t.b, t.c + vec3(0.0, 0.0, 0.3));
        }
        let b_tris: Vec<Triangle> = sheet(3, 2.0)
            .into_iter()
            .map(|t| {
                Triangle::new(
                    t.a + vec3(1.3, 0.7, 0.0),
                    t.b + vec3(1.3, 0.7, 0.0),
                    t.c + vec3(1.3, 0.7, 0.1),
                )
            })
            .collect();
        let brute = a_tris
            .iter()
            .flat_map(|x| b_tris.iter().map(move |y| tri_tri_dist2(x, y)))
            .fold(f64::INFINITY, f64::min);
        let ta = AabbTree::build(a_tris);
        let tb = AabbTree::build(b_tris);
        let mut tests = 0;
        let d2 = ta.min_dist2_tree(&tb, f64::INFINITY, &mut tests);
        assert!((d2 - brute).abs() < 1e-12, "bvh {d2} vs brute {brute}");
    }

    #[test]
    fn upper_bound_seed_prunes() {
        let a = AabbTree::build(sheet(8, 0.0));
        let b = AabbTree::build(sheet(8, 3.0));
        let mut t_unseeded = 0;
        let mut t_seeded = 0;
        let exact = a.min_dist2_tree(&b, f64::INFINITY, &mut t_unseeded);
        // A seed barely above the true distance still returns the truth.
        let d = a.min_dist2_tree(&b, exact + 1e-9, &mut t_seeded);
        assert!((d - exact).abs() < 1e-12);
        // A seed below the true distance returns the seed unchanged.
        let d2 = a.min_dist2_tree(&b, 1.0, &mut t_seeded);
        assert_eq!(d2, 1.0);
    }

    #[test]
    fn point_distance() {
        let t = AabbTree::build(sheet(4, 0.0));
        assert!((t.min_dist2_point(vec3(2.0, 2.0, 5.0)) - 25.0).abs() < 1e-12);
        assert_eq!(t.min_dist2_point(vec3(1.5, 1.5, 0.0)), 0.0);
        assert!((t.min_dist2_point(vec3(-1.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_triangle_tree() {
        let tri = Triangle::new(Vec3::ZERO, vec3(1.0, 0.0, 0.0), vec3(0.0, 1.0, 0.0));
        let t = AabbTree::build(vec![tri]);
        assert_eq!(t.len(), 1);
        let mut n = 0;
        assert!(t.intersects_triangle(&tri, &mut n));
        assert_eq!(n, 1);
    }

    #[test]
    #[should_panic]
    fn empty_build_panics() {
        let _ = AabbTree::build(vec![]);
    }

    #[test]
    fn build_shared_is_zero_copy() {
        let buf = Arc::new(sheet(6, 0.0));
        let t = AabbTree::build_shared(Arc::clone(&buf));
        assert!(Arc::ptr_eq(t.shared_triangles(), &buf));
        // Sharing must not change any answer: compare with an owned build.
        let owned = AabbTree::build(sheet(6, 0.0));
        let other = AabbTree::build(sheet(6, 2.5));
        let (mut n1, mut n2) = (0, 0);
        let d_shared = t.min_dist2_tree(&other, f64::INFINITY, &mut n1);
        let d_owned = owned.min_dist2_tree(&other, f64::INFINITY, &mut n2);
        assert_eq!(d_shared, d_owned);
        assert_eq!(n1, n2);
    }
}
