//! # tripro-viz
//!
//! A tiny dependency-free software renderer for inspecting meshes and PPVP
//! LOD ladders: orthographic projection, z-buffered rasterisation with flat
//! Lambert shading, PPM (binary `P6`) output. Not a product renderer — a
//! debugging and documentation aid, so the repository can visualise what
//! the codec does to a polyhedron without external tooling.

pub mod camera;
pub mod image;
pub mod render;

pub use camera::Camera;
pub use image::Image;
pub use render::{render_mesh, render_triangles, RenderOptions};
