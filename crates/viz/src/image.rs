//! RGB image buffer with binary-PPM output.

/// An 8-bit RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    /// Row-major RGB triples.
    pixels: Vec<[u8; 3]>,
}

impl Image {
    /// A `width × height` image filled with `background`.
    pub fn new(width: usize, height: usize, background: [u8; 3]) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Self {
            width,
            height,
            pixels: vec![background; width * height],
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`; `(0, 0)` is the top-left corner.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        self.pixels[y * self.width + x]
    }

    /// Set pixel at `(x, y)` (ignores out-of-bounds coordinates).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = rgb;
        }
    }

    /// Number of pixels that differ from `background` — a cheap coverage
    /// metric for tests.
    pub fn coverage(&self, background: [u8; 3]) -> usize {
        self.pixels.iter().filter(|p| **p != background).count()
    }

    /// Encode as binary PPM (`P6`).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.pixels.len() * 3);
        for p in &self.pixels {
            out.extend_from_slice(p);
        }
        out
    }

    /// Write a binary PPM file.
    pub fn save_ppm(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_ppm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixels_and_coverage() {
        let bg = [0, 0, 0];
        let mut img = Image::new(4, 3, bg);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.coverage(bg), 0);
        img.set(1, 2, [255, 0, 0]);
        img.set(99, 99, [1, 2, 3]); // silently ignored
        assert_eq!(img.get(1, 2), [255, 0, 0]);
        assert_eq!(img.coverage(bg), 1);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(2, 2, [10, 20, 30]);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 12);
        assert_eq!(&ppm[11..14], &[10, 20, 30]);
    }

    #[test]
    #[should_panic]
    fn empty_image_panics() {
        Image::new(0, 5, [0; 3]);
    }
}
