//! Z-buffered triangle rasterisation with flat Lambert shading.

use crate::camera::Camera;
use crate::image::Image;
use tripro_geom::{Triangle, Vec3};
use tripro_mesh::TriMesh;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    pub width: usize,
    pub height: usize,
    pub background: [u8; 3],
    /// Base surface colour (modulated by Lambert shading).
    pub color: [u8; 3],
    /// Light direction (from surface towards the light).
    pub light: Vec3,
    /// Cull faces pointing away from the camera.
    pub backface_cull: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            width: 512,
            height: 512,
            background: [16, 16, 24],
            color: [200, 120, 90],
            light: Vec3::new(0.4, 0.3, 1.0),
            backface_cull: true,
        }
    }
}

/// Render a triangle soup with the given camera.
pub fn render_triangles(tris: &[Triangle], cam: &Camera, opts: &RenderOptions) -> Image {
    let mut img = Image::new(opts.width, opts.height, opts.background);
    let mut zbuf = vec![f64::INFINITY; opts.width * opts.height];
    let light = opts.light.normalized().unwrap_or(Vec3::Z);
    let (w, h) = (opts.width as f64, opts.height as f64);

    for t in tris {
        let n = match t.normal() {
            Some(n) => n,
            None => continue, // degenerate sliver
        };
        if opts.backface_cull && n.dot(cam.towards) <= 0.0 {
            continue;
        }
        // Flat shade: ambient + Lambert.
        let lambert = n.dot(light).max(0.0);
        let shade = 0.25 + 0.75 * lambert;
        let rgb = [
            (opts.color[0] as f64 * shade) as u8,
            (opts.color[1] as f64 * shade) as u8,
            (opts.color[2] as f64 * shade) as u8,
        ];

        // Project to pixel space.
        let p: Vec<(f64, f64, f64)> = t
            .vertices()
            .iter()
            .map(|v| {
                let (x, y, d) = cam.project(*v);
                (x * w, y * h, d)
            })
            .collect();
        rasterize(&mut img, &mut zbuf, &p, rgb, opts.width, opts.height);
    }
    img
}

/// Rasterise one projected triangle with barycentric depth interpolation.
fn rasterize(
    img: &mut Image,
    zbuf: &mut [f64],
    p: &[(f64, f64, f64)],
    rgb: [u8; 3],
    width: usize,
    height: usize,
) {
    let (x0, y0, z0) = p[0];
    let (x1, y1, z1) = p[1];
    let (x2, y2, z2) = p[2];
    let min_x = x0.min(x1).min(x2).floor().max(0.0) as usize;
    let max_x = (x0.max(x1).max(x2).ceil() as usize).min(width.saturating_sub(1));
    let min_y = y0.min(y1).min(y2).floor().max(0.0) as usize;
    let max_y = (y0.max(y1).max(y2).ceil() as usize).min(height.saturating_sub(1));
    let area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0);
    if area.abs() < 1e-12 {
        return;
    }
    let inv = 1.0 / area;
    for py in min_y..=max_y {
        for px in min_x..=max_x {
            let (fx, fy) = (px as f64 + 0.5, py as f64 + 0.5);
            // Barycentric coordinates.
            let w0 = ((x1 - fx) * (y2 - fy) - (x2 - fx) * (y1 - fy)) * inv;
            let w1 = ((x2 - fx) * (y0 - fy) - (x0 - fx) * (y2 - fy)) * inv;
            let w2 = 1.0 - w0 - w1;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            let depth = w0 * z0 + w1 * z1 + w2 * z2;
            let idx = py * width + px;
            if depth < zbuf[idx] {
                zbuf[idx] = depth;
                img.set(px, py, rgb);
            }
        }
    }
}

/// Render an indexed mesh with an auto-framed isometric camera.
pub fn render_mesh(tm: &TriMesh, opts: &RenderOptions) -> Image {
    let tris = tm.triangles();
    let cam = Camera::isometric(&tm.aabb());
    render_triangles(&tris, &cam, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::{vec3, Aabb};
    use tripro_mesh::testutil::{cube, sphere};

    fn opts() -> RenderOptions {
        RenderOptions {
            width: 96,
            height: 96,
            ..Default::default()
        }
    }

    #[test]
    fn sphere_renders_a_disc() {
        let s = sphere(vec3(0.0, 0.0, 0.0), 1.0, 3);
        let img = render_mesh(&s, &opts());
        let covered = img.coverage(opts().background) as f64;
        let total = (96 * 96) as f64;
        // The isometric camera frames the sphere's bounding *cube*, whose
        // projected half-extent is √(8/3)·1.05 ≈ 1.71 for a unit sphere, so
        // the silhouette disc covers π/(2·1.71)² ≈ 0.27 of the image.
        let frac = covered / total;
        assert!(frac > 0.2 && frac < 0.35, "coverage {frac}");
    }

    #[test]
    fn cube_front_view_is_square() {
        let c = cube(vec3(0.0, 0.0, 0.0), 2.0);
        let cam = Camera::framing(&c.aabb(), vec3(0.0, 0.0, 1.0), vec3(0.0, 1.0, 0.0));
        let o = opts();
        let img = render_triangles(&c.triangles(), &cam, &o);
        // Centre pixel hit, far corners background (margin ring).
        assert_ne!(img.get(48, 48), o.background);
        assert_eq!(img.get(0, 0), o.background);
        // Coverage ≈ (1/1.05)² of the square.
        let frac = img.coverage(o.background) as f64 / (96.0 * 96.0);
        assert!(frac > 0.8 && frac <= 1.0, "coverage {frac}");
    }

    #[test]
    fn depth_test_prefers_nearer_surface() {
        // Two parallel quads; camera looks along +z so the z=1 plane is
        // nearer (projected depth smaller). Disable culling: plain soup.
        let near = Triangle::new(
            vec3(-1.0, -1.0, 1.0),
            vec3(1.0, -1.0, 1.0),
            vec3(0.0, 1.0, 1.0),
        );
        let far = Triangle::new(
            vec3(-1.0, -1.0, 0.0),
            vec3(1.0, -1.0, 0.0),
            vec3(0.0, 1.0, 0.0),
        );
        let bb = Aabb::from_corners(vec3(-1.0, -1.0, 0.0), vec3(1.0, 1.0, 1.0));
        let cam = Camera::framing(&bb, vec3(0.0, 0.0, 1.0), vec3(0.0, 1.0, 0.0));
        let o = RenderOptions {
            backface_cull: false,
            color: [255, 255, 255],
            ..opts()
        };
        // Render far-then-near and near-then-far: identical result.
        let a = render_triangles(&[far, near], &cam, &o);
        let b = render_triangles(&[near, far], &cam, &o);
        assert_eq!(a, b, "z-buffer must make order irrelevant");
    }

    #[test]
    fn backface_culling_halves_work() {
        let s = sphere(vec3(0.0, 0.0, 0.0), 1.0, 2);
        let culled = render_mesh(&s, &opts());
        let unculled = render_mesh(
            &s,
            &RenderOptions {
                backface_cull: false,
                ..opts()
            },
        );
        // Same silhouette either way (closed surface).
        assert_eq!(
            culled.coverage(opts().background),
            unculled.coverage(opts().background)
        );
    }

    #[test]
    fn deterministic_output() {
        let s = sphere(vec3(3.0, 1.0, 2.0), 1.5, 2);
        assert_eq!(render_mesh(&s, &opts()), render_mesh(&s, &opts()));
    }
}
