//! Orthographic camera: a view direction, an up hint, and a framing box.

use tripro_geom::{Aabb, Vec3};

/// Orthographic camera looking along `-direction` ("direction" points from
/// the scene towards the camera).
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    /// Unit vector from scene to camera.
    pub towards: Vec3,
    /// Image-space right and up basis (orthonormal with `towards`).
    pub right: Vec3,
    pub up: Vec3,
    /// Scene-space centre mapped to the image centre.
    pub center: Vec3,
    /// Half-extent of the view square in scene units.
    pub half_extent: f64,
}

impl Camera {
    /// Camera viewing from `direction` (need not be unit), framing `bb`
    /// with a small margin. `up_hint` resolves the roll; any vector not
    /// parallel to `direction` works.
    pub fn framing(bb: &Aabb, direction: Vec3, up_hint: Vec3) -> Self {
        let towards = direction.normalized().unwrap_or(Vec3::Z);
        let mut right = up_hint.cross(towards);
        if right.norm2() < 1e-12 {
            right = Vec3::X.cross(towards);
            if right.norm2() < 1e-12 {
                right = Vec3::Y.cross(towards);
            }
        }
        let right = right.normalized().unwrap();
        let up = towards.cross(right).normalized().unwrap();
        let center = bb.center();
        // Fit: project all corners, take the max |coordinate|.
        let mut half = 0.0f64;
        for c in bb.corners() {
            let d = c - center;
            half = half.max(d.dot(right).abs()).max(d.dot(up).abs());
        }
        Self {
            towards,
            right,
            up,
            center,
            half_extent: half * 1.05 + 1e-12,
        }
    }

    /// Standard three-quarter view of a box.
    pub fn isometric(bb: &Aabb) -> Self {
        Self::framing(bb, Vec3::new(1.0, 1.0, 1.0), Vec3::Z)
    }

    /// Project a scene point to `(x, y, depth)` in the unit square
    /// `[0, 1]²` (y grows downward, image convention); depth grows away
    /// from the camera.
    #[inline]
    pub fn project(&self, p: Vec3) -> (f64, f64, f64) {
        let d = p - self.center;
        let x = d.dot(self.right) / (2.0 * self.half_extent) + 0.5;
        let y = 0.5 - d.dot(self.up) / (2.0 * self.half_extent);
        let depth = -d.dot(self.towards);
        (x, y, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;

    #[test]
    fn basis_is_orthonormal() {
        let bb = Aabb::from_corners(vec3(-1.0, -2.0, -3.0), vec3(1.0, 2.0, 3.0));
        let cam = Camera::isometric(&bb);
        assert!((cam.towards.norm() - 1.0).abs() < 1e-12);
        assert!((cam.right.norm() - 1.0).abs() < 1e-12);
        assert!((cam.up.norm() - 1.0).abs() < 1e-12);
        assert!(cam.towards.dot(cam.right).abs() < 1e-12);
        assert!(cam.towards.dot(cam.up).abs() < 1e-12);
        assert!(cam.right.dot(cam.up).abs() < 1e-12);
    }

    #[test]
    fn all_corners_project_inside_unit_square() {
        let bb = Aabb::from_corners(vec3(5.0, -1.0, 2.0), vec3(9.0, 4.0, 3.0));
        for dir in [
            vec3(1.0, 0.0, 0.0),
            vec3(0.3, -0.9, 0.4),
            vec3(1.0, 1.0, 1.0),
        ] {
            let cam = Camera::framing(&bb, dir, Vec3::Z);
            for c in bb.corners() {
                let (x, y, _) = cam.project(c);
                assert!((0.0..=1.0).contains(&x), "x={x} dir={dir}");
                assert!((0.0..=1.0).contains(&y), "y={y} dir={dir}");
            }
        }
    }

    #[test]
    fn center_projects_to_middle_and_depth_orders() {
        let bb = Aabb::from_corners(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0));
        let cam = Camera::framing(&bb, vec3(0.0, 0.0, 1.0), Vec3::Y);
        let (x, y, _) = cam.project(bb.center());
        assert!((x - 0.5).abs() < 1e-12 && (y - 0.5).abs() < 1e-12);
        // A point nearer the camera (larger z here) has smaller depth.
        let (_, _, near) = cam.project(vec3(0.0, 0.0, 1.0));
        let (_, _, far) = cam.project(vec3(0.0, 0.0, -1.0));
        assert!(near < far);
    }

    #[test]
    fn degenerate_up_hint_recovers() {
        let bb = Aabb::from_corners(vec3(0.0, 0.0, 0.0), vec3(1.0, 1.0, 1.0));
        let cam = Camera::framing(&bb, Vec3::Z, Vec3::Z); // parallel hint
        assert!((cam.right.norm() - 1.0).abs() < 1e-12);
    }
}
