//! The concurrency correctness rules (L5–L7); see `docs/concurrency.md`.
//!
//! These rules make the locking and atomics discipline of the engine
//! machine-checked:
//!
//! * **L5 `lock_order`** — every `Mutex`/`RwLock` declaration carries a
//!   `// LOCK-RANK(n):` annotation, and the static lock-acquisition graph
//!   (which lock is taken while another guard is lexically live) must only
//!   contain strictly rank-ascending edges. Same-lock re-acquisition while
//!   held and cycles among unranked locks are reported too.
//! * **L6 `atomic_ordering`** — `Ordering::Relaxed` on a publication-risk
//!   operation (`store`/`swap`/`compare_exchange`/`fetch_update`) or on a
//!   load that guards control flow (`if`/`while` conditions — the
//!   same-function guard pattern) needs an `// ORDERING:` justification;
//!   `Ordering::SeqCst` always needs one (over-synchronization is a cost
//!   and usually a sign the required edge was never identified).
//! * **L7 `condvar_wait_loop`** — `Condvar` waits must sit inside a
//!   `while`/`loop` predicate re-check, and no guard may be lexically live
//!   across a pool dispatch (`run_with`) or blocking I/O call.
//!
//! All three are *lexical* analyses over the token stream: they see edges
//! inside one function body, not across calls (the cross-function
//! hierarchy is documented and enforced by rank assignment — see
//! `docs/concurrency.md`). The dynamic side of the story is the
//! deterministic interleaving harness in `tripro::sync::model`.

use crate::lexer::{Comment, Lexed, Tok, TokKind};
use crate::rules::{Diagnostic, Rule};

/// Atomic RMW/store operations with publication risk under `Relaxed`:
/// their result is typically *read by another thread* to decide whether
/// associated (possibly non-atomic) data is ready.
const PUBLISH_OPS: &[&str] = &[
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// Pure counter-style RMW ops: benign under `Relaxed` unless used as a
/// control-flow guard.
const COUNTER_OPS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
];

/// Calls that block (pool dispatch, socket/file I/O, thread lifecycle);
/// holding a lock guard across one of these stalls every contender of the
/// lock for the full latency of the operation.
const BLOCKING_CALLS: &[&str] = &[
    "run_with",
    "write_all",
    "flush",
    "read_exact",
    "read_to_end",
    "accept",
    "connect",
    "sleep",
    "join",
];

/// Guard-preserving adaptor methods: `m.lock().unwrap_or_else(..)` still
/// binds a live guard.
const GUARD_ADAPTORS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// One declared lock in a file.
#[derive(Debug)]
struct LockDecl {
    name: String,
    rank: Option<u32>,
    line: u32,
}

/// A lexically live lock guard.
#[derive(Debug)]
struct LiveGuard {
    /// Binding name (`let g = lock(..)`), if any.
    var: Option<String>,
    /// Resolved lock name (declaration it acquires).
    lock: String,
    /// Brace depth at which the guard was bound; it dies when the scope
    /// closes (or at the next `;` for temporaries).
    depth: usize,
    temp: bool,
}

/// An acquisition edge: `held` was locked when `taken` was acquired.
#[derive(Debug)]
struct Edge {
    held: String,
    taken: String,
    line: u32,
}

/// Shared per-file analysis for L5 and L7: declarations, live-guard scope
/// tracking, acquisition edges, wait sites and blocking-call sites.
struct ConcAnalysis {
    decls: Vec<LockDecl>,
    edges: Vec<Edge>,
    /// (line, held-lock name, blocked-call name) — a blocking call made
    /// while a guard was live.
    blocking_under_guard: Vec<(u32, String, String)>,
    /// Lines of `wait`/`wait_timeout` call sites not inside a loop body.
    naked_waits: Vec<u32>,
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn text_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).map(|t| t.text.as_str())
}

/// Index just past the `)` matching the `(` at `open`.
fn skip_parens(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match text_at(toks, i) {
            Some("(") => depth += 1,
            Some(")") => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Walk backwards over one balanced `(..)`/`[..]` group ending at `close`;
/// returns the index of the opening token.
fn rewind_group(toks: &[Tok], close: usize) -> usize {
    let (open_s, close_s) = match text_at(toks, close) {
        Some(")") => ("(", ")"),
        Some("]") => ("[", "]"),
        _ => return close,
    };
    let mut depth = 0i32;
    let mut i = close;
    loop {
        match text_at(toks, i) {
            Some(s) if s == close_s => depth += 1,
            Some(s) if s == open_s => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// The receiver identifier of a method call whose `.` sits at `dot`
/// (e.g. `self.shards[vi].lock()` → `shards`).
fn receiver_of(toks: &[Tok], dot: usize) -> Option<String> {
    let mut i = dot.checked_sub(1)?;
    // Skip trailing index/call groups: `foo(..)` / `foo[..]`.
    while matches!(text_at(toks, i), Some(")") | Some("]")) {
        let open = rewind_group(toks, i);
        i = open.checked_sub(1)?;
    }
    ident_at(toks, i).map(str::to_string)
}

/// Index just past the `]` matching the `[` at `open`.
fn skip_brackets(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match text_at(toks, i) {
            Some("[") => depth += 1,
            Some("]") => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// The lock identifier inside the call parens opening at `open`: the last
/// segment of the leading path expression — `&self.shared.state` → `state`,
/// `&self.shards[i]` → `shards`, `shard` → `shard`.
fn arg_lock_name(toks: &[Tok], open: usize) -> Option<String> {
    let end = skip_parens(toks, open);
    let mut i = open + 1;
    while i < end && matches!(text_at(toks, i), Some("&" | "*" | "mut")) {
        i += 1;
    }
    let mut name = None;
    while i < end {
        let Some(id) = ident_at(toks, i) else { break };
        if id != "self" && id != "mut" {
            name = Some(id.to_string());
        }
        i += 1;
        while i < end && text_at(toks, i) == Some("[") {
            i = skip_brackets(toks, i);
        }
        if !matches!(text_at(toks, i), Some(".") | Some("::")) {
            break;
        }
        i += 1;
    }
    name
}

/// Statement start: index just past the previous `;`, `{` or `}`.
fn stmt_start(toks: &[Tok], at: usize) -> usize {
    let mut i = at;
    while i > 0 {
        if matches!(text_at(toks, i - 1), Some(";") | Some("{") | Some("}")) {
            return i;
        }
        i -= 1;
    }
    0
}

/// The `// LOCK-RANK(n):` annotation for a declaration at `line`: same
/// line or up to two lines above (room for one attribute line). When
/// several comments qualify, the nearest one wins, so adjacent annotated
/// declarations don't bleed into each other.
fn rank_near(comments: &[Comment], line: u32) -> Option<u32> {
    let mut best: Option<(u32, u32)> = None; // (comment end line, rank)
    for c in comments {
        if c.end_line + 2 < line || c.line > line {
            continue;
        }
        if let Some(pos) = c.text.find("LOCK-RANK(") {
            let rest = &c.text[pos + "LOCK-RANK(".len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if let Ok(n) = digits.parse() {
                if best.map_or(true, |(e, _)| c.end_line >= e) {
                    best = Some((c.end_line, n));
                }
            }
        }
    }
    best.map(|(_, n)| n)
}

/// Is there an `// ORDERING:` justification for `line` — same line, the
/// three lines above, or a function-level comment (within three lines
/// above the `fn` keyword of the function whose body range covers `line`)?
fn ordering_justified(comments: &[Comment], fns: &[(u32, u32, u32)], line: u32) -> bool {
    let site = comments
        .iter()
        .any(|c| c.text.contains("ORDERING:") && c.end_line + 3 >= line && c.line <= line);
    if site {
        return true;
    }
    fns.iter()
        .filter(|&&(fn_line, lo, hi)| (lo..=hi).contains(&line) && fn_line <= line)
        .any(|&(fn_line, _, _)| {
            comments.iter().any(|c| {
                c.text.contains("ORDERING:") && c.end_line + 3 >= fn_line && c.line < fn_line
            })
        })
}

/// Scan lock/RwLock declarations: an `Mutex<`/`RwLock<` type token whose
/// field/static/binding name is the identifier before the preceding `:`.
fn scan_decls(lexed: &Lexed) -> Vec<LockDecl> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "Mutex" && t.text != "RwLock") {
            continue;
        }
        if text_at(toks, i + 1) != Some("<") {
            continue;
        }
        // Walk backwards over type syntax to the `name :` introducer.
        let mut j = i;
        let mut name = None;
        while j > 0 {
            j -= 1;
            match text_at(toks, j) {
                Some(":") => {
                    name = ident_at(toks, j - 1).map(str::to_string);
                    break;
                }
                // Type-position tokens we may cross.
                Some("<" | ">" | ">>" | "[" | "]" | "(" | ")" | "&" | "::" | "'static") => {}
                Some(_) if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) => {}
                Some(_) if toks.get(j).is_some_and(|t| t.kind == TokKind::Lifetime) => {}
                _ => break,
            }
        }
        let Some(name) = name else { continue };
        // Function parameters (`m: &Mutex<T>` in helper signatures) are
        // not declarations; heuristically skip names introduced right
        // after `(` or `,` inside a `fn` signature — detected by an `&`
        // directly before the type (borrowed param), which a field or
        // static initialised in place never has.
        let before_colon = j;
        let borrow_param = (before_colon + 1..i).any(|k| text_at(toks, k) == Some("&"));
        if borrow_param {
            continue;
        }
        out.push(LockDecl {
            name,
            rank: rank_near(&lexed.comments, t.line),
            line: t.line,
        });
    }
    out
}

/// Function body ranges as `(fn_keyword_line, first_line, last_line)`.
fn fn_ranges(toks: &[Tok]) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("fn") {
            let fn_line = toks[i].line;
            // First `{` at zero paren depth opens the body (or `;` ends a
            // trait-method signature).
            let mut j = i + 1;
            let mut pdepth = 0i32;
            while j < toks.len() {
                match text_at(toks, j) {
                    Some("(") => pdepth += 1,
                    Some(")") => pdepth -= 1,
                    Some(";") if pdepth == 0 => break,
                    Some("{") if pdepth == 0 => {
                        let close = matching_brace(toks, j);
                        let lo = toks[j].line;
                        let hi = toks.get(close).map_or(lo, |t| t.line);
                        out.push((fn_line, lo, hi));
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match text_at(toks, i) {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Token-index ranges of `while`/`loop` bodies (for the wait-in-loop
/// check).
fn loop_body_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "while" && t.text != "loop") {
            continue;
        }
        // Find the body `{` at zero paren/bracket depth.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            match text_at(toks, j) {
                Some("(") | Some("[") => depth += 1,
                Some(")") | Some("]") => depth -= 1,
                Some("{") if depth == 0 => {
                    out.push((j, matching_brace(toks, j)));
                    break;
                }
                Some(";") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
    }
    out
}

/// Kind of acquisition recognised at a token index.
enum Acq {
    /// `lock(&expr)` / `sync::lock(expr)` helper call; payload = arg open
    /// paren index.
    Helper(usize),
    /// `expr.lock()` / `expr.read()` / `expr.write()` method; payload =
    /// receiver name.
    Method(String),
}

/// Recognise a lock acquisition whose head identifier sits at `i`.
fn acquisition_at(toks: &[Tok], i: usize) -> Option<Acq> {
    let id = ident_at(toks, i)?;
    let prev = i.checked_sub(1).and_then(|p| text_at(toks, p));
    let next = text_at(toks, i + 1);
    if prev == Some("fn") {
        return None;
    }
    if id == "lock" && next == Some("(") && prev != Some(".") {
        return Some(Acq::Helper(i + 1));
    }
    if matches!(id, "lock" | "read" | "write") && prev == Some(".") && next == Some("(") {
        // Method form must be nullary: `m.lock()`, `rw.read()`. This keeps
        // `io::Read::read(&mut buf)` and map `write(..)` calls out.
        if text_at(toks, i + 2) == Some(")") {
            let dot = i - 1;
            return receiver_of(toks, dot).map(Acq::Method);
        }
    }
    None
}

/// Run the shared L5/L7 token walk.
fn analyse(lexed: &Lexed) -> ConcAnalysis {
    let toks = &lexed.tokens;
    let decls = scan_decls(lexed);
    let loops = loop_body_ranges(toks);

    let mut edges = Vec::new();
    let mut blocking_under_guard = Vec::new();
    let mut naked_waits = Vec::new();

    let mut depth: usize = 0;
    let mut guards: Vec<LiveGuard> = Vec::new();
    // (alias, lock-name, depth) — `let s = &self.states[..]` and for-loop
    // patterns over lock collections.
    let mut aliases: Vec<(String, String, usize)> = Vec::new();

    let resolve = |aliases: &[(String, String, usize)], name: String| -> String {
        aliases
            .iter()
            .rev()
            .find(|(a, _, _)| *a == name)
            .map_or(name, |(_, l, _)| l.clone())
    };

    let mut i = 0;
    while i < toks.len() {
        match text_at(toks, i) {
            Some("{") => {
                depth += 1;
                i += 1;
                continue;
            }
            Some("}") => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                aliases.retain(|&(_, _, d)| d <= depth);
                i += 1;
                continue;
            }
            Some(";") => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                i += 1;
                continue;
            }
            _ => {}
        }

        // `drop(g)` releases the named guard early.
        if ident_at(toks, i) == Some("drop")
            && text_at(toks, i + 1) == Some("(")
            && text_at(toks, i + 3) == Some(")")
        {
            if let Some(v) = ident_at(toks, i + 2) {
                guards.retain(|g| g.var.as_deref() != Some(v));
            }
            i += 4;
            continue;
        }

        // `for PAT in ..lock-collection..` — alias the pattern idents.
        // (`impl Trait for Type` also contains `for`; a loop is recognised
        // by an `in` keyword before the opening `{`.)
        if ident_at(toks, i) == Some("for") {
            let mut j = i + 1;
            let mut pat = Vec::new();
            let mut found_in = false;
            while j < toks.len() && j - i < 48 {
                if matches!(text_at(toks, j), Some("{") | Some(";")) {
                    break;
                }
                if ident_at(toks, j) == Some("in") {
                    found_in = true;
                    break;
                }
                if let Some(id) = ident_at(toks, j) {
                    if id != "mut" {
                        pat.push(id.to_string());
                    }
                }
                j += 1;
            }
            if found_in {
                // Scan the iterator expression up to the loop `{`.
                let mut k = j;
                let mut target = None;
                while k < toks.len() && text_at(toks, k) != Some("{") {
                    if let Some(id) = ident_at(toks, k) {
                        if decls.iter().any(|d| d.name == id) {
                            target = Some(id.to_string());
                        }
                    }
                    k += 1;
                }
                if let Some(lock) = target {
                    for p in pat {
                        aliases.push((p, lock.clone(), depth + 1));
                    }
                }
                i = j + 1;
                continue;
            }
        }

        // `let name = &..lock-collection..;` (no acquisition in RHS) —
        // reference alias.
        if ident_at(toks, i) == Some("let") {
            let mut j = i + 1;
            if ident_at(toks, j) == Some("mut") {
                j += 1;
            }
            if let (Some(name), Some("=")) = (ident_at(toks, j), text_at(toks, j + 1)) {
                if text_at(toks, j + 2) == Some("&") {
                    let mut k = j + 2;
                    let mut target = None;
                    let mut has_acq = false;
                    while k < toks.len() && text_at(toks, k) != Some(";") {
                        if ident_at(toks, k) == Some("lock") {
                            has_acq = true;
                        }
                        if let Some(id) = ident_at(toks, k) {
                            if decls.iter().any(|d| d.name == id) {
                                target = Some(id.to_string());
                            }
                        }
                        k += 1;
                    }
                    if let (Some(lock), false) = (target, has_acq) {
                        aliases.push((name.to_string(), lock, depth));
                    }
                }
            }
        }

        // Wait sites: helper `wait(cv, guard)` or method `.wait(..)` /
        // `.wait_timeout(..)`; `wait_while` carries its own predicate loop.
        if matches!(ident_at(toks, i), Some("wait" | "wait_timeout")) {
            let prev = i.checked_sub(1).and_then(|p| text_at(toks, p));
            if text_at(toks, i + 1) == Some("(") && prev != Some("fn") {
                let in_loop = loops.iter().any(|&(lo, hi)| (lo..=hi).contains(&i));
                if !in_loop {
                    naked_waits.push(toks[i].line);
                }
            }
        }

        // Blocking calls while a guard is live.
        if let Some(id) = ident_at(toks, i) {
            if BLOCKING_CALLS.contains(&id) && text_at(toks, i + 1) == Some("(") {
                for g in &guards {
                    blocking_under_guard.push((toks[i].line, g.lock.clone(), id.to_string()));
                }
            }
        }

        // Acquisitions.
        if let Some(acq) = acquisition_at(toks, i) {
            let raw = match &acq {
                Acq::Helper(open) => arg_lock_name(toks, *open),
                Acq::Method(recv) => Some(recv.clone()),
            };
            if let Some(raw) = raw {
                let lock = resolve(&aliases, raw);
                for g in &guards {
                    edges.push(Edge {
                        held: g.lock.clone(),
                        taken: lock.clone(),
                        line: toks[i].line,
                    });
                }
                // Guard binding: `let [mut] v = [& * mut] ACQ(..) ;` with
                // only guard-preserving adaptors chained after.
                let start = stmt_start(toks, i);
                let mut var = None;
                if ident_at(toks, start) == Some("let") {
                    let mut j = start + 1;
                    if ident_at(toks, j) == Some("mut") {
                        j += 1;
                    }
                    if let (Some(name), Some("=")) = (ident_at(toks, j), text_at(toks, j + 1)) {
                        // Everything between `=` and the acquisition must
                        // be prefix operators.
                        let clean_prefix = (j + 2..i).all(|k| {
                            matches!(text_at(toks, k), Some("&" | "*" | "mut"))
                                || ident_at(toks, k) == Some("mut")
                        });
                        if clean_prefix {
                            var = Some(name.to_string());
                        }
                    }
                } else if let (Some(name), Some("=")) =
                    (ident_at(toks, start), text_at(toks, start + 1))
                {
                    // Re-binding an existing guard variable: `st = lock(..)`
                    // or `st = wait(cv, st)`.
                    if start + 2 == i {
                        var = Some(name.to_string());
                    }
                }
                // A chained call after the acquisition (other than a
                // guard-preserving adaptor) drops the guard within the
                // statement.
                let after = skip_parens(
                    toks,
                    match &acq {
                        Acq::Helper(open) => *open,
                        Acq::Method(_) => i + 1,
                    },
                );
                let mut temp = var.is_none();
                if var.is_some() && text_at(toks, after) == Some(".") {
                    let chained = ident_at(toks, after + 1).unwrap_or("");
                    if !GUARD_ADAPTORS.contains(&chained) {
                        temp = true;
                        var = None;
                    }
                }
                if let Some(v) = &var {
                    // A rebind replaces the prior guard of the same name.
                    guards.retain(|g| g.var.as_deref() != Some(v.as_str()));
                }
                guards.push(LiveGuard {
                    var,
                    lock,
                    depth,
                    temp,
                });
            }
        }

        i += 1;
    }

    ConcAnalysis {
        decls,
        edges,
        blocking_under_guard,
        naked_waits,
    }
}

// ---------------------------------------------------------------------
// L5 — lock ordering
// ---------------------------------------------------------------------

pub(crate) fn check_lock_order(
    path: &str,
    lexed: &Lexed,
    in_scope: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let analysis = analyse(lexed);
    for d in &analysis.decls {
        if !in_scope(d.line) {
            continue;
        }
        if d.rank.is_none() {
            out.push(Diagnostic {
                rule: Rule::LockOrder,
                file: path.to_string(),
                line: d.line,
                message: format!(
                    "lock `{}` has no `// LOCK-RANK(n):` annotation; assign it a rank \
                     in the hierarchy (docs/concurrency.md) so ordering is checkable",
                    d.name
                ),
            });
        }
    }
    let rank_of = |name: &str| -> Option<u32> {
        analysis
            .decls
            .iter()
            .find(|d| d.name == name)
            .and_then(|d| d.rank)
    };
    for e in &analysis.edges {
        if !in_scope(e.line) {
            continue;
        }
        if e.held == e.taken {
            out.push(Diagnostic {
                rule: Rule::LockOrder,
                file: path.to_string(),
                line: e.line,
                message: format!(
                    "lock `{}` is acquired while a guard for it is already live; \
                     std mutexes are not reentrant — this deadlocks",
                    e.taken
                ),
            });
            continue;
        }
        if let (Some(h), Some(t)) = (rank_of(&e.held), rank_of(&e.taken)) {
            if t <= h {
                out.push(Diagnostic {
                    rule: Rule::LockOrder,
                    file: path.to_string(),
                    line: e.line,
                    message: format!(
                        "lock-order violation: acquiring `{}` (rank {t}) while holding \
                         `{}` (rank {h}); locks must be taken in strictly ascending rank",
                        e.taken, e.held
                    ),
                });
            }
        }
    }
    // Cycle detection over edges with at least one unranked endpoint
    // (ranked cycles necessarily contain a descending edge reported above).
    let unranked_edges: Vec<(&str, &str, u32)> = analysis
        .edges
        .iter()
        .filter(|e| {
            in_scope(e.line)
                && e.held != e.taken
                && (rank_of(&e.held).is_none() || rank_of(&e.taken).is_none())
        })
        .map(|e| (e.held.as_str(), e.taken.as_str(), e.line))
        .collect();
    for &(a, b, line) in &unranked_edges {
        // Direct two-cycle is the only shape a lexical per-file graph
        // realistically produces; deeper cycles reduce to it pairwise.
        if unranked_edges
            .iter()
            .any(|&(c, d, l2)| c == b && d == a && l2 >= line)
        {
            out.push(Diagnostic {
                rule: Rule::LockOrder,
                file: path.to_string(),
                line,
                message: format!(
                    "lock acquisition cycle: `{a}` is taken while `{b}` is held and \
                     vice versa; two threads interleaving these deadlock"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// L6 — atomics ordering discipline
// ---------------------------------------------------------------------

/// One atomic operation call site.
struct AtomicSite {
    line: u32,
    op: String,
    orderings: Vec<String>,
    in_condition: bool,
}

fn atomic_sites(toks: &[Tok]) -> Vec<AtomicSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let op = t.text.as_str();
        if !PUBLISH_OPS.contains(&op) && !COUNTER_OPS.contains(&op) && op != "load" {
            continue;
        }
        if i == 0 || text_at(toks, i - 1) != Some(".") || text_at(toks, i + 1) != Some("(") {
            continue;
        }
        let end = skip_parens(toks, i + 1);
        let orderings: Vec<String> = (i + 2..end)
            .filter_map(|k| ident_at(toks, k))
            .filter(|id| matches!(*id, "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"))
            .map(str::to_string)
            .collect();
        if orderings.is_empty() {
            continue; // not an atomic call (e.g. `map.store(..)`)
        }
        let start = stmt_start(toks, i);
        let in_condition = (start..i).any(|k| matches!(ident_at(toks, k), Some("if" | "while")));
        out.push(AtomicSite {
            line: t.line,
            op: op.to_string(),
            orderings,
            in_condition,
        });
    }
    out
}

pub(crate) fn check_atomic_ordering(
    path: &str,
    lexed: &Lexed,
    in_scope: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    let fns = fn_ranges(toks);
    for site in atomic_sites(toks) {
        if !in_scope(site.line) {
            continue;
        }
        let justified = ordering_justified(&lexed.comments, &fns, site.line);
        if justified {
            continue;
        }
        let relaxed = site.orderings.iter().any(|o| o == "Relaxed");
        let seqcst = site.orderings.iter().any(|o| o == "SeqCst");
        if seqcst {
            out.push(Diagnostic {
                rule: Rule::AtomicOrdering,
                file: path.to_string(),
                line: site.line,
                message: format!(
                    "`{}` uses `SeqCst`: over-synchronization needs a `// ORDERING:` \
                     justification (or name the actual acquire/release edge instead)",
                    site.op
                ),
            });
            continue;
        }
        if !relaxed {
            continue;
        }
        if PUBLISH_OPS.contains(&site.op.as_str()) {
            out.push(Diagnostic {
                rule: Rule::AtomicOrdering,
                file: path.to_string(),
                line: site.line,
                message: format!(
                    "`{}` with `Ordering::Relaxed` can publish data without a \
                     happens-before edge; justify with `// ORDERING:` or use Release",
                    site.op
                ),
            });
        } else if site.op == "load" && site.in_condition {
            out.push(Diagnostic {
                rule: Rule::AtomicOrdering,
                file: path.to_string(),
                line: site.line,
                message: "relaxed `load` guarding control flow (same-function guard \
                          pattern) may read stale state; justify with `// ORDERING:` \
                          or use Acquire"
                    .to_string(),
            });
        } else if COUNTER_OPS.contains(&site.op.as_str()) && site.in_condition {
            out.push(Diagnostic {
                rule: Rule::AtomicOrdering,
                file: path.to_string(),
                line: site.line,
                message: format!(
                    "relaxed `{}` used as a control-flow guard; justify with \
                     `// ORDERING:` or use an acquire/release pair",
                    site.op
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// L7 — condvar wait loops and guards across blocking calls
// ---------------------------------------------------------------------

pub(crate) fn check_condvar_wait_loop(
    path: &str,
    lexed: &Lexed,
    in_scope: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let analysis = analyse(lexed);
    for &line in &analysis.naked_waits {
        if !in_scope(line) {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::CondvarWaitLoop,
            file: path.to_string(),
            line,
            message: "`wait` outside a `while`/`loop` predicate re-check; condvar \
                      wakeups are spurious-prone and a single-shot wait loses them"
                .to_string(),
        });
    }
    for (line, lock, call) in &analysis.blocking_under_guard {
        if !in_scope(*line) {
            continue;
        }
        out.push(Diagnostic {
            rule: Rule::CondvarWaitLoop,
            file: path.to_string(),
            line: *line,
            message: format!(
                "`{call}` called while guard for `{lock}` is live; blocking under a \
                 lock stalls every contender — release the guard first"
            ),
        });
    }
}
