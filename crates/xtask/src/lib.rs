//! Workspace static analysis for the 3DPro reproduction.
//!
//! `cargo xtask lint` enforces seven repo-specific correctness rules that
//! rustc/clippy cannot express (see `docs/invariants.md` and
//! `docs/concurrency.md`):
//!
//! * **L1 `no_panic`** — library crates on the query hot path must not
//!   `unwrap()`/`expect()`/`panic!` outside test code.
//! * **L2 `float_eq`** — no naked float `==`/`!=`; tolerance must go through
//!   `geom::eps`.
//! * **L3 `must_use`** — public predicates in `geom`/`mesh` returning
//!   `bool`/`Ordering` must be `#[must_use]`.
//! * **L4 `safety_comment`** — `unsafe` blocks/impls need a `// SAFETY:`
//!   comment.
//! * **L5 `lock_order`** — every `Mutex`/`RwLock` carries a
//!   `// LOCK-RANK(n):` annotation and locks are acquired in strictly
//!   ascending rank.
//! * **L6 `atomic_ordering`** — `Ordering::Relaxed` with publication risk
//!   and any `SeqCst` need an `// ORDERING:` justification.
//! * **L7 `condvar_wait_loop`** — condvar waits sit in predicate loops; no
//!   guard is held across pool dispatch or blocking I/O.
//!
//! The driver deliberately avoids external parser crates: a small lexer
//! (`lexer`) tokenises each file, and the rules (`rules`, `conc`) walk the
//! token stream with a comment side-table. That keeps the tool
//! dependency-free and fast enough to run on every CI push.

pub mod conc;
pub mod lexer;
pub mod rules;

use rules::{lint_source, Diagnostic, Rule};
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free (L1). These sit on the
/// decode/refine hot path where an abort loses the whole query batch.
const PANIC_FREE_CRATES: &[&str] = &["geom", "coder", "mesh", "index", "tripro", "serve"];

/// Crates whose public predicates must be `#[must_use]` (L3).
const MUST_USE_CRATES: &[&str] = &["geom", "mesh"];

/// Which rules apply to the file at `path` (workspace-relative, `/`-separated).
#[must_use]
pub fn rules_for(path: &str) -> Vec<Rule> {
    let mut rules = Vec::new();
    fn crate_of(p: &str) -> Option<&str> {
        p.strip_prefix("crates/").and_then(|r| r.split('/').next())
    }
    let in_src = path.contains("/src/");
    if let Some(krate) = crate_of(path) {
        if in_src && PANIC_FREE_CRATES.contains(&krate) {
            rules.push(Rule::NoPanic);
        }
        if in_src && MUST_USE_CRATES.contains(&krate) {
            rules.push(Rule::MustUse);
        }
    }
    // Epsilon discipline applies everywhere except the module that defines
    // the epsilon primitives (it must compare floats exactly) and tests,
    // which are already excluded per-region by the rule itself.
    if !path.ends_with("geom/src/eps.rs") {
        rules.push(Rule::FloatEq);
    }
    rules.push(Rule::SafetyComment);
    // Concurrency rules (L5–L7) cover first-party crate sources. The lock
    // abstraction layer itself (tripro/src/sync.rs: the poison-recovering
    // helpers and the model explorer) is exempt from L5 — its `&Mutex<T>`
    // parameters are the helpers every other module is ranked against.
    if crate_of(path).is_some() && in_src && !path.starts_with("vendor/") {
        if !path.ends_with("tripro/src/sync.rs") {
            rules.push(Rule::LockOrder);
        }
        rules.push(Rule::AtomicOrdering);
        rules.push(Rule::CondvarWaitLoop);
    }
    rules
}

/// Recursively collect `.rs` files under `dir`, skipping `target/`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lint every workspace source file under `root`; returns all diagnostics.
///
/// Scans `crates/*/src`, `crates/*/tests`, `vendor/*/src`, plus the
/// top-level `tests/` and `benches/` trees.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in ["crates", "vendor", "tests", "benches"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut diags = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        diags.extend(lint_source(&rel, &src, &rules_for(&rel)));
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VIOLATIONS: &str = include_str!("../fixtures/violations.rs.fixture");
    const CLEAN: &str = include_str!("../fixtures/clean.rs.fixture");

    const ALL: &[Rule] = &[
        Rule::NoPanic,
        Rule::FloatEq,
        Rule::MustUse,
        Rule::SafetyComment,
    ];

    fn count(diags: &[Diagnostic], rule: Rule) -> usize {
        diags.iter().filter(|d| d.rule == rule).count()
    }

    #[test]
    fn seeded_violations_all_fire() {
        let diags = lint_source("crates/geom/src/fixture.rs", VIOLATIONS, ALL);
        assert_eq!(count(&diags, Rule::NoPanic), 5, "{diags:#?}");
        assert_eq!(count(&diags, Rule::FloatEq), 3, "{diags:#?}");
        assert_eq!(count(&diags, Rule::MustUse), 2, "{diags:#?}");
        assert_eq!(count(&diags, Rule::SafetyComment), 2, "{diags:#?}");
    }

    #[test]
    fn clean_fixture_passes() {
        let diags = lint_source("crates/geom/src/fixture.rs", CLEAN, ALL);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let x: Option<u8> = None; x.unwrap(); assert!(1.0 == 1.0); }\n}\n";
        let diags = lint_source("crates/geom/src/x.rs", src, ALL);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // tripro_lint::allow(no_panic): caller guarantees non-empty\n    *v.first().expect(\"non-empty\")\n}\n";
        let diags = lint_source("crates/geom/src/x.rs", src, &[Rule::NoPanic]);
        assert!(diags.is_empty(), "{diags:#?}");
        // Wrong rule name in the marker must NOT suppress.
        let src_bad = src.replace("allow(no_panic)", "allow(float_eq)");
        let diags = lint_source("crates/geom/src/x.rs", &src_bad, &[Rule::NoPanic]);
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn eps_module_is_exempt_from_float_eq() {
        let rules = rules_for("crates/geom/src/eps.rs");
        assert!(!rules.contains(&Rule::FloatEq));
        assert!(rules.contains(&Rule::NoPanic));
    }

    #[test]
    fn rule_scoping_by_crate() {
        let bench = rules_for("crates/bench/src/main.rs");
        assert!(!bench.contains(&Rule::NoPanic), "bench binaries may panic");
        assert!(bench.contains(&Rule::FloatEq));
        let tripro = rules_for("crates/tripro/src/query.rs");
        assert!(tripro.contains(&Rule::NoPanic));
        assert!(!tripro.contains(&Rule::MustUse));
    }

    #[test]
    fn observability_modules_are_panic_free_lint_targets() {
        // Regression guard: obs/ sits under crates/tripro/src/, so the
        // tracing and histogram hot paths must stay in the no-panic set
        // alongside the rest of the engine.
        for file in [
            "crates/tripro/src/obs/mod.rs",
            "crates/tripro/src/obs/histogram.rs",
            "crates/tripro/src/obs/trace.rs",
            "crates/tripro/src/obs/registry.rs",
            "crates/tripro/src/obs/export.rs",
        ] {
            let rules = rules_for(file);
            assert!(rules.contains(&Rule::NoPanic), "{file} must be no-panic");
            assert!(rules.contains(&Rule::FloatEq), "{file} must ban float ==");
        }
    }

    #[test]
    fn pipeline_modules_are_fully_linted() {
        // The streaming join executor is hot-path engine code AND lock
        // infrastructure: it must stay in the no-panic set and under the
        // full concurrency rule battery (lock ranks on its hub/channel
        // mutexes, ordering notes on the occupancy atomics, predicate
        // loops around its condvar waits).
        for file in [
            "crates/tripro/src/pipeline.rs",
            "crates/tripro/src/query.rs",
        ] {
            let rules = rules_for(file);
            assert!(rules.contains(&Rule::NoPanic), "{file} must be no-panic");
            for rule in [Rule::LockOrder, Rule::AtomicOrdering, Rule::CondvarWaitLoop] {
                assert!(rules.contains(&rule), "{file} must be under {rule:?}");
            }
        }
        // The sync layer hosts the wait helpers themselves: exempt from
        // L5 (its `&Mutex<T>` parameters carry no rank) but still under
        // the wait-loop and ordering rules.
        let sync_rules = rules_for("crates/tripro/src/sync.rs");
        assert!(sync_rules.contains(&Rule::NoPanic));
        assert!(!sync_rules.contains(&Rule::LockOrder));
        assert!(sync_rules.contains(&Rule::CondvarWaitLoop));
    }

    #[test]
    fn fault_and_panic_path_modules_are_fully_linted() {
        // The failpoint registry and the serve fault/retry paths are the
        // code that runs *during* injected failures — precisely when a
        // stray unwrap or mis-ranked lock would turn an injected fault
        // into a real outage. Pin them into the no-panic set and the full
        // concurrency battery so they cannot silently drop out.
        for file in [
            "crates/tripro/src/fault.rs",
            "crates/serve/src/server.rs",
            "crates/serve/src/client.rs",
            "crates/serve/src/coordinator.rs",
            "crates/serve/src/shard.rs",
        ] {
            let rules = rules_for(file);
            assert!(rules.contains(&Rule::NoPanic), "{file} must be no-panic");
            for rule in [Rule::LockOrder, Rule::AtomicOrdering, Rule::CondvarWaitLoop] {
                assert!(rules.contains(&rule), "{file} must be under {rule:?}");
            }
        }
    }

    const CONC_VIOLATIONS: &str = include_str!("../fixtures/conc_violations.rs.fixture");
    const CONC_CLEAN: &str = include_str!("../fixtures/conc_clean.rs.fixture");

    const CONC: &[Rule] = &[Rule::LockOrder, Rule::AtomicOrdering, Rule::CondvarWaitLoop];

    #[test]
    fn conc_seeded_violations_all_fire() {
        let diags = lint_source("crates/tripro/src/fixture.rs", CONC_VIOLATIONS, CONC);
        assert_eq!(count(&diags, Rule::LockOrder), 6, "{diags:#?}");
        assert_eq!(count(&diags, Rule::AtomicOrdering), 5, "{diags:#?}");
        assert_eq!(count(&diags, Rule::CondvarWaitLoop), 3, "{diags:#?}");
    }

    #[test]
    fn conc_clean_fixture_passes() {
        let diags = lint_source("crates/tripro/src/fixture.rs", CONC_CLEAN, CONC);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn conc_allow_markers_suppress() {
        // lock_order: a descending acquisition blessed by its marker.
        let src = "struct S {\n    // LOCK-RANK(20):\n    a: Mutex<u32>,\n    // LOCK-RANK(10):\n    b: Mutex<u32>,\n}\nfn f(s: &S) {\n    let g = lock(&s.a);\n    // tripro_lint::allow(lock_order): justified\n    let h = lock(&s.b);\n    drop(h);\n    drop(g);\n}\n";
        let diags = lint_source("crates/tripro/src/x.rs", src, &[Rule::LockOrder]);
        assert!(diags.is_empty(), "{diags:#?}");

        // atomic_ordering: SeqCst blessed by its marker.
        let src = "fn f(a: &std::sync::atomic::AtomicU64) -> u64 {\n    // tripro_lint::allow(atomic_ordering): justified\n    a.load(Ordering::SeqCst)\n}\n";
        let diags = lint_source("crates/tripro/src/x.rs", src, &[Rule::AtomicOrdering]);
        assert!(diags.is_empty(), "{diags:#?}");

        // condvar_wait_loop: blocking under a guard blessed by its marker.
        let src = "fn f(m: &M, w: &mut W) {\n    let g = lock(&m.inner);\n    // tripro_lint::allow(condvar_wait_loop): justified\n    let _ = w.flush();\n    drop(g);\n}\n";
        let diags = lint_source("crates/tripro/src/x.rs", src, &[Rule::CondvarWaitLoop]);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn conc_rules_scoped_to_first_party_src() {
        let tripro = rules_for("crates/tripro/src/cache.rs");
        for r in CONC {
            assert!(tripro.contains(r), "{r:?} must cover tripro src");
        }
        // The lock abstraction layer is exempt from L5 only.
        let sync = rules_for("crates/tripro/src/sync.rs");
        assert!(!sync.contains(&Rule::LockOrder));
        assert!(sync.contains(&Rule::AtomicOrdering));
        // Vendored stubs and integration tests are out of scope.
        for path in ["vendor/rand/src/lib.rs", "tests/concurrency.rs"] {
            let rules = rules_for(path);
            for r in CONC {
                assert!(!rules.contains(r), "{r:?} must not cover {path}");
            }
        }
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for r in rules::ALL_RULES {
            assert!(
                r.explain().contains(r.name()),
                "explain() for {r:?} must name the rule"
            );
            assert!(Rule::from_name(r.name()) == Some(*r));
        }
    }

    #[test]
    fn diagnostics_render_with_location() {
        let diags = lint_source("crates/geom/src/fixture.rs", VIOLATIONS, &[Rule::NoPanic]);
        let rendered = format!("{}", diags[0]);
        assert!(
            rendered.starts_with("crates/geom/src/fixture.rs:"),
            "{rendered}"
        );
        assert!(rendered.contains("[no_panic]"), "{rendered}");
    }
}
