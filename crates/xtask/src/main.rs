//! `cargo xtask <command>` — workspace automation.
//!
//! Commands:
//! * `lint` — run the repo-specific static-analysis rules (L1–L7) over every
//!   workspace source file; exits 1 if any diagnostic is produced.
//! * `lint --list` — print the rule set and scoping, then exit 0.
//! * `lint --explain <rule>` — print one rule's rationale, then exit 0.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::rules::{Rule, ALL_RULES};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/xtask at compile time; when run via
    // `cargo xtask` the cwd is the workspace root, so fall back to ".".
    option_env!("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .filter(|p| p.join("Cargo.toml").exists())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn print_rules() {
    println!("rules enforced by `cargo xtask lint`:");
    println!("  no_panic           no unwrap()/expect()/panic!/todo!/unimplemented! in");
    println!("                     non-test code of geom, coder, mesh, index, tripro, serve");
    println!("  float_eq           no naked float ==/!= outside geom::eps and tests");
    println!("  must_use           public bool/Ordering predicates in geom and mesh");
    println!("                     must be #[must_use]");
    println!("  safety_comment     unsafe blocks/impls need a // SAFETY: comment");
    println!("  lock_order         every Mutex/RwLock carries // LOCK-RANK(n): and locks");
    println!("                     are acquired in strictly ascending rank");
    println!("  atomic_ordering    Relaxed stores/guard-loads and any SeqCst need an");
    println!("                     // ORDERING: justification");
    println!("  condvar_wait_loop  condvar waits sit in predicate loops; no guard held");
    println!("                     across pool dispatch or blocking I/O");
    println!();
    println!("suppress a finding with a comment on the same or previous line:");
    println!("  // tripro_lint::allow(<rule>): <justification>");
    println!();
    println!("`cargo xtask lint --explain <rule>` prints a rule's full rationale.");
}

fn explain(name: &str) -> ExitCode {
    match Rule::from_name(name) {
        Some(rule) => {
            println!("{}", rule.explain());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("xtask lint: unknown rule `{name}`; known rules:");
            for r in ALL_RULES {
                eprintln!("  {}", r.name());
            }
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.iter().any(|a| a == "--list") {
                print_rules();
                return ExitCode::SUCCESS;
            }
            if let Some(pos) = args.iter().position(|a| a == "--explain") {
                let Some(name) = args.get(pos + 1) else {
                    eprintln!("usage: cargo xtask lint --explain <rule>");
                    return ExitCode::FAILURE;
                };
                return explain(name);
            }
            let root = workspace_root();
            match xtask::lint_workspace(&root) {
                Ok(diags) if diags.is_empty() => {
                    eprintln!("xtask lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(diags) => {
                    for d in &diags {
                        println!("{d}");
                    }
                    eprintln!("xtask lint: {} violation(s)", diags.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: i/o error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--list | --explain <rule>]");
            ExitCode::FAILURE
        }
    }
}
