//! The repo-specific lint rules (L1–L7); see `docs/invariants.md` and
//! `docs/concurrency.md`.
//!
//! Rules operate on the token stream from [`crate::lexer`], so strings and
//! comments can't produce false positives. Test code (`#[cfg(test)]` mods
//! and `#[test]` fns) is exempt from L1–L3. A finding is suppressed by a
//! marker comment on the same line or the line directly above:
//!
//! ```text
//! // tripro_lint::allow(no_panic): the index is validated two lines up
//! ```

use crate::lexer::{lex, Lexed, Tok, TokKind};

/// The lint rules the driver can enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// L1: no `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in
    /// non-test library code.
    NoPanic,
    /// L2: no `==`/`!=` against float literals outside `geom::eps`.
    FloatEq,
    /// L3: public predicates returning `bool`/`Ordering` carry `#[must_use]`.
    MustUse,
    /// L4: every `unsafe` block/impl has a `// SAFETY:` comment.
    SafetyComment,
    /// L5: every `Mutex`/`RwLock` carries `// LOCK-RANK(n):` and locks are
    /// acquired in strictly ascending rank (no cycles, no re-entry).
    LockOrder,
    /// L6: `Ordering::Relaxed` on publishing stores / guard loads and any
    /// `SeqCst` need an `// ORDERING:` justification.
    AtomicOrdering,
    /// L7: `Condvar::wait` sits in a predicate loop; no guard is held
    /// across pool dispatch or blocking I/O.
    CondvarWaitLoop,
}

/// All rules, in L-number order (for `--list`/`--explain`).
pub const ALL_RULES: &[Rule] = &[
    Rule::NoPanic,
    Rule::FloatEq,
    Rule::MustUse,
    Rule::SafetyComment,
    Rule::LockOrder,
    Rule::AtomicOrdering,
    Rule::CondvarWaitLoop,
];

impl Rule {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no_panic",
            Rule::FloatEq => "float_eq",
            Rule::MustUse => "must_use",
            Rule::SafetyComment => "safety_comment",
            Rule::LockOrder => "lock_order",
            Rule::AtomicOrdering => "atomic_ordering",
            Rule::CondvarWaitLoop => "condvar_wait_loop",
        }
    }

    /// Parse a rule from its `name()` form.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// The rationale printed by `cargo xtask lint --explain <rule>`.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoPanic => {
                "L1 no_panic\n\
                 Library crates on the decode/refine hot path must not call\n\
                 `unwrap()`/`expect()` or invoke `panic!`/`todo!`/`unimplemented!`\n\
                 outside test code. A panic aborts the worker that hit it and loses\n\
                 the whole query batch; corrupt input streams are an expected event\n\
                 (tests/robustness.rs), so fallibility must travel through\n\
                 Result/Option. Suppress a justified site with\n\
                 `// tripro_lint::allow(no_panic): <why>`."
            }
            Rule::FloatEq => {
                "L2 float_eq\n\
                 No naked `==`/`!=` against float literals. Exact float comparison\n\
                 hides the tolerance decision that the correctness argument in\n\
                 docs/CORRECTNESS.md depends on; route comparisons through\n\
                 `geom::eps` (approx_eq / is_exactly_zero) so every tolerance is\n\
                 explicit and auditable. The eps module itself is exempt — it is\n\
                 where exact comparison is the point."
            }
            Rule::MustUse => {
                "L3 must_use\n\
                 Public predicates in geom/mesh returning `bool` or an ordering\n\
                 must carry `#[must_use]`. These functions are correctness checks\n\
                 (containment, orientation, intersection); a silently dropped\n\
                 result means a check that never happened."
            }
            Rule::SafetyComment => {
                "L4 safety_comment\n\
                 Every `unsafe` block or unsafe trait impl carries a `// SAFETY:`\n\
                 comment within the three lines above it stating the invariant\n\
                 that makes the code sound. The comment is the reviewable artifact\n\
                 — absent it, the soundness argument lives in someone's head."
            }
            Rule::LockOrder => {
                "L5 lock_order\n\
                 Every `Mutex`/`RwLock` declaration carries a `// LOCK-RANK(n):`\n\
                 annotation placing it in the global lock hierarchy\n\
                 (docs/concurrency.md), and within a function locks may only be\n\
                 acquired in strictly ascending rank while another guard is live.\n\
                 Ascending-only acquisition makes wait-for cycles — and therefore\n\
                 deadlocks — impossible by construction. The check is lexical\n\
                 (per function body); cross-function nesting is governed by the\n\
                 documented hierarchy. Re-acquiring a lock already held is always\n\
                 an error: std mutexes are not reentrant. Suppress with\n\
                 `// tripro_lint::allow(lock_order): <why>`."
            }
            Rule::AtomicOrdering => {
                "L6 atomic_ordering\n\
                 `Ordering::Relaxed` is flagged on operations with publication\n\
                 risk — `store`/`swap`/`compare_exchange`/`fetch_update`, and\n\
                 loads (or RMWs) used as `if`/`while` guards — because Relaxed\n\
                 provides no happens-before edge: a reader can observe the flag\n\
                 before the data it guards. `SeqCst` is flagged everywhere as\n\
                 over-synchronization that usually means the real acquire/release\n\
                 edge was never identified. Both are allowed when justified by an\n\
                 `// ORDERING:` comment (same line, up to three lines above, or\n\
                 above the enclosing `fn` to bless a whole kernel). Pure counters\n\
                 (`fetch_add` on statistics) are exempt."
            }
            Rule::CondvarWaitLoop => {
                "L7 condvar_wait_loop\n\
                 Two checks. (1) `wait`/`wait_timeout` must sit inside a `while`\n\
                 or `loop` body that re-checks the predicate: condvar wakeups are\n\
                 spurious-prone, and a single-shot wait misses a notification\n\
                 that fires between unlock and park. (2) No lock guard may be\n\
                 lexically live across a blocking call (pool `run_with`, socket\n\
                 write_all/flush/read, `sleep`, `join`): blocking under a lock\n\
                 stalls every contender for the full latency of the operation.\n\
                 Suppress with `// tripro_lint::allow(condvar_wait_loop): <why>`."
            }
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Lint one source file against `rules`.
#[must_use]
pub fn lint_source(path: &str, src: &str, rules: &[Rule]) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let test_regions = test_regions(&lexed.tokens);
    let mut out = Vec::new();
    for &rule in rules {
        let blessed = blessed_lines(&lexed, rule);
        let in_scope = |line: u32| {
            !blessed.contains(&line)
                && !test_regions
                    .iter()
                    .any(|&(lo, hi)| (lo..=hi).contains(&line))
        };
        match rule {
            Rule::NoPanic => check_no_panic(path, &lexed, &in_scope, &mut out),
            Rule::FloatEq => check_float_eq(path, &lexed, &in_scope, &mut out),
            Rule::MustUse => check_must_use(path, &lexed, &in_scope, &mut out),
            Rule::SafetyComment => check_safety(path, &lexed, &blessed, &mut out),
            Rule::LockOrder => crate::conc::check_lock_order(path, &lexed, &in_scope, &mut out),
            Rule::AtomicOrdering => {
                crate::conc::check_atomic_ordering(path, &lexed, &in_scope, &mut out);
            }
            Rule::CondvarWaitLoop => {
                crate::conc::check_condvar_wait_loop(path, &lexed, &in_scope, &mut out);
            }
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

/// Lines blessed by `tripro_lint::allow(<rule>)` marker comments: the
/// marker's own line and the line right after it (marker-above style).
fn blessed_lines(lexed: &Lexed, rule: Rule) -> Vec<u32> {
    let needle = format!("tripro_lint::allow({})", rule.name());
    let mut lines = Vec::new();
    for c in &lexed.comments {
        if c.text.contains(&needle) {
            lines.push(c.line);
            lines.push(c.end_line + 1);
        }
    }
    lines
}

/// Line ranges covered by `#[cfg(test)]` items and `#[test]` functions.
///
/// Heuristic, not a full parse: after a test attribute, the region extends
/// from the attribute to the close of the next brace-balanced block. An
/// attribute followed by `;` before any `{` (e.g. `#[cfg(test)] use x;`)
/// covers just those lines.
fn test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let (attr_end, is_test) = scan_attr(tokens, i + 1);
            if is_test {
                let start_line = tokens[i].line;
                // Find the block opened by the annotated item.
                let mut j = attr_end;
                let mut end_line = tokens
                    .get(attr_end.saturating_sub(1))
                    .map_or(start_line, |t| t.line);
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        ";" => {
                            end_line = tokens[j].line;
                            break;
                        }
                        "{" => {
                            let close = match_brace(tokens, j);
                            end_line = tokens.get(close).map_or(tokens[j].line, |t| t.line);
                            j = close;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                regions.push((start_line, end_line));
                i = j.max(attr_end);
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    regions
}

/// Scan an attribute starting at the `[` token; returns (index past the
/// closing `]`, whether it marks test code).
fn scan_attr(tokens: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut body = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => body.push(tokens[i].text.as_str()),
        }
        i += 1;
    }
    let is_test = body == ["test"]
        || body.windows(4).any(|w| w == ["cfg", "(", "test", ")"])
        || (body.first() == Some(&"cfg") && body.contains(&"test"));
    (i + 1, is_test)
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

// ---------------------------------------------------------------------
// L1 — panic freedom
// ---------------------------------------------------------------------

fn check_no_panic(
    path: &str,
    lexed: &Lexed,
    in_scope: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !in_scope(t.line) {
            continue;
        }
        let prev = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .map(|t| t.text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        let method_call = prev == Some(".") && next == Some("(");
        let bang_macro = next == Some("!");
        let hit = match t.text.as_str() {
            "unwrap" | "expect" if method_call => true,
            "panic" | "todo" | "unimplemented" if bang_macro => true,
            _ => false,
        };
        if hit {
            out.push(Diagnostic {
                rule: Rule::NoPanic,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` can abort the process; propagate a Result/Option instead \
                     (or justify with `// tripro_lint::allow(no_panic): ...`)",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// L2 — epsilon discipline
// ---------------------------------------------------------------------

fn check_float_eq(
    path: &str,
    lexed: &Lexed,
    in_scope: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || !in_scope(t.line) {
            continue;
        }
        let lhs_float = i
            .checked_sub(1)
            .and_then(|p| toks.get(p))
            .is_some_and(|t| t.kind == TokKind::Float);
        // Skip a unary minus on the right-hand side.
        let mut j = i + 1;
        while toks.get(j).is_some_and(|t| t.text == "-") {
            j += 1;
        }
        let rhs_float = toks.get(j).is_some_and(|t| t.kind == TokKind::Float);
        if lhs_float || rhs_float {
            out.push(Diagnostic {
                rule: Rule::FloatEq,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "naked float `{}` comparison; use geom::eps (approx_eq / \
                     is_exactly_zero) so the tolerance is explicit",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// L3 — #[must_use] on public predicates
// ---------------------------------------------------------------------

fn check_must_use(
    path: &str,
    lexed: &Lexed,
    in_scope: &dyn Fn(u32) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "pub" || !in_scope(toks[i].line) {
            i += 1;
            continue;
        }
        let pub_idx = i;
        let mut j = i + 1;
        // `pub(crate)` & friends are not public API — skip the item.
        if toks.get(j).is_some_and(|t| t.text == "(") {
            i += 1;
            continue;
        }
        // Qualifiers between `pub` and `fn`.
        while toks
            .get(j)
            .is_some_and(|t| matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern"))
            || toks.get(j).is_some_and(|t| t.kind == TokKind::Literal)
        {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.text == "fn") {
            i += 1;
            continue;
        }
        let name = toks.get(j + 1).map_or(String::new(), |t| t.text.clone());
        let fn_line = toks[j].line;
        // Skip generics, then the parameter list.
        j += 2;
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        if !toks.get(j).is_some_and(|t| t.text == "(") {
            i = j;
            continue;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {}
            }
            j += 1;
            if depth == 0 {
                break;
            }
        }
        // Return type.
        if !toks.get(j).is_some_and(|t| t.text == "->") {
            i = j;
            continue;
        }
        j += 1;
        let ret_start = j;
        while j < toks.len() && !matches!(toks[j].text.as_str(), "{" | "where" | ";") {
            j += 1;
        }
        let ret: Vec<&str> = toks[ret_start..j].iter().map(|t| t.text.as_str()).collect();
        let is_predicate =
            ret == ["bool"] || ret.last() == Some(&"Ordering") || ret.last() == Some(&"Order");
        if is_predicate && !has_attr(toks, pub_idx, "must_use") {
            out.push(Diagnostic {
                rule: Rule::MustUse,
                file: path.to_string(),
                line: fn_line,
                message: format!(
                    "public predicate `{name}` returns `{}` but is not `#[must_use]`; \
                     a dropped result silently skips a correctness check",
                    ret.join("")
                ),
            });
        }
        i = j;
    }
}

/// Does the item whose first token is at `idx` carry `#[<name>]` (possibly
/// among several attributes)?
fn has_attr(toks: &[Tok], idx: usize, name: &str) -> bool {
    let mut end = idx;
    // Walk backwards over stacked `#[...]` attribute groups.
    while end >= 2 && toks.get(end - 1).is_some_and(|t| t.text == "]") {
        let mut depth = 0i32;
        let mut k = end - 1;
        loop {
            match toks[k].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if k == 0 || toks[k - 1].text != "#" {
            return false;
        }
        if toks[k..end].iter().any(|t| t.text == name) {
            return true;
        }
        end = k - 1;
    }
    false
}

// ---------------------------------------------------------------------
// L4 — SAFETY comments on unsafe
// ---------------------------------------------------------------------

fn check_safety(path: &str, lexed: &Lexed, blessed: &[u32], out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" || blessed.contains(&t.line) {
            continue;
        }
        let next = toks.get(i + 1).map(|t| t.text.as_str());
        // Blocks and unsafe trait impls need a justification at the site;
        // `unsafe fn` documents its contract in rustdoc instead.
        if !matches!(next, Some("{") | Some("impl")) {
            continue;
        }
        let documented = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line <= t.line && c.end_line + 3 >= t.line
        });
        if !documented {
            out.push(Diagnostic {
                rule: Rule::SafetyComment,
                file: path.to_string(),
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment in the 3 lines above \
                          it; state the invariant that makes this sound"
                    .to_string(),
            });
        }
    }
}
