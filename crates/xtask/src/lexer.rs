//! A minimal Rust lexer for the lint driver.
//!
//! `syn` is unavailable offline, and the lint rules (L1–L4) only need a
//! faithful token stream — not a parse tree. The lexer understands every
//! construct that could make a naive text scan lie: line and (nested)
//! block comments, string/char/byte/raw-string literals, lifetimes versus
//! char literals, and numeric literals with suffixes. Comments are kept in
//! a side table (rules L4 and the allow-markers need them); the main
//! token stream contains only code.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`) — distinct from char literals.
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, exponent, or fN suffix).
    Float,
    /// String, raw string, byte string or char literal.
    Literal,
    /// Operator or punctuation (multi-char ops are single tokens).
    Punct,
}

/// One token of code.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// The token text, owned so diagnostics can quote it.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment, preserved for `// SAFETY:` and allow-marker checks.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (block comments span).
    pub end_line: u32,
}

/// Lexed file: code tokens plus the comment side table.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators recognised as single tokens, longest first.
const MULTI_OPS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenise `src`. Never fails: unterminated constructs consume to EOF,
/// which is good enough for linting (rustc reports the real error).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether the most recent comment was a full-line `//` comment (and so
    // may be extended by the next contiguous full-line `//` comment).
    let mut last_comment_full_line = false;

    let count_lines = |s: &str| s.bytes().filter(|&b| b == b'\n').count() as u32;

    while i < bytes.len() {
        let c = bytes[i] as char;

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (also doc comments). Contiguous full-line `//` runs
        // are merged into one block so a marker (`LOCK-RANK`, `ORDERING:`,
        // `tripro_lint::allow`) anywhere in a multi-line justification
        // comment annotates the code right below the whole block. Trailing
        // comments (code earlier on the same line) never join a merge.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
            let full_line = out.tokens.last().map_or(true, |t| t.line != line);
            let continues_run = full_line
                && last_comment_full_line
                && out.comments.last().is_some_and(|p| p.end_line + 1 == line);
            if continues_run {
                if let Some(p) = out.comments.last_mut() {
                    p.text.push('\n');
                    p.text.push_str(&src[i..end]);
                    p.end_line = line;
                }
            } else {
                out.comments.push(Comment {
                    text: src[i..end].to_string(),
                    line,
                    end_line: line,
                });
                last_comment_full_line = full_line;
            }
            i = end;
            continue;
        }

        // Block comment, possibly nested.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: src[start..i].to_string(),
                line: start_line,
                end_line: line,
            });
            last_comment_full_line = false;
            continue;
        }

        // Raw strings: r"...", r#"..."#, and byte variants br#"..."#.
        let raw_start = if c == 'r' && matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')) {
            Some(i + 1)
        } else if c == 'b'
            && bytes.get(i + 1) == Some(&b'r')
            && matches!(bytes.get(i + 2), Some(b'"') | Some(b'#'))
        {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                let terminator: String = std::iter::once('"')
                    .chain(std::iter::repeat('#').take(hashes))
                    .collect();
                let body_start = j + 1;
                let end = src[body_start..]
                    .find(&terminator)
                    .map_or(bytes.len(), |n| body_start + n + terminator.len());
                let text = &src[i..end];
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: text.to_string(),
                    line,
                });
                line += count_lines(text);
                i = end;
                continue;
            }
        }

        // Ordinary and byte strings.
        if c == '"' || (c == 'b' && bytes.get(i + 1) == Some(&b'"')) {
            let start = i;
            i += if c == 'b' { 2 } else { 1 };
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            let text = &src[start..i.min(bytes.len())];
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                text: text.to_string(),
                line: line - count_lines(text),
            });
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let next = bytes.get(i + 1).copied();
            let after = bytes.get(i + 2).copied();
            let is_lifetime = matches!(next, Some(n) if (n as char).is_alphabetic() || n == b'_')
                && after != Some(b'\'');
            if is_lifetime {
                let mut j = i + 1;
                while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal: 'x', '\n', '\'', '\u{1F600}'.
            let start = i;
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                text: src[start..i.min(bytes.len())].to_string(),
                line,
            });
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            // 0x / 0o / 0b prefixes are always integers.
            if c == '0' && matches!(bytes.get(i + 1), Some(b'x' | b'o' | b'b' | b'X')) {
                i += 2;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
            } else {
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                // Fractional part — but not `1..2` (range) or `1.method()`.
                if bytes.get(i) == Some(&b'.')
                    && bytes
                        .get(i + 1)
                        .is_some_and(|&b| (b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                } else if bytes.get(i) == Some(&b'.')
                    && !matches!(bytes.get(i + 1), Some(b'.'))
                    && !bytes
                        .get(i + 1)
                        .is_some_and(|&b| (b as char).is_alphabetic() || b == b'_')
                {
                    // Trailing dot: `1.` is a float.
                    is_float = true;
                    i += 1;
                }
                // Exponent.
                if matches!(bytes.get(i), Some(b'e' | b'E'))
                    && bytes
                        .get(i + 1)
                        .is_some_and(|&b| (b as char).is_ascii_digit() || b == b'+' || b == b'-')
                {
                    is_float = true;
                    i += 1;
                    if matches!(bytes.get(i), Some(b'+' | b'-')) {
                        i += 1;
                    }
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                // Suffix: f32/f64 forces float; u8/i64/usize stay ints.
                let suffix_start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if src[suffix_start..i].starts_with('f') {
                    is_float = true;
                }
            }
            out.tokens.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }

        // Identifier / keyword (including raw identifiers `r#match`).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            if c == 'r' && bytes.get(i + 1) == Some(&b'#') {
                i += 2;
            }
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }

        // Multi-char operators (maximal munch), then single punct.
        let rest = &src[i..];
        if let Some(op) = MULTI_OPS.iter().find(|op| rest.starts_with(**op)) {
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line,
            });
            i += op.len();
            continue;
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += c.len_utf8();
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_side_tabled() {
        let l = lex("let x = 1; // trailing\n/* block\nspanning */ let y = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "// trailing");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        // Tokens exclude comments; `y = 2` is on line 3.
        let y = l.tokens.iter().find(|t| t.text == "y").expect("y token");
        assert_eq!(y.line, 3);
    }

    #[test]
    fn contiguous_line_comments_merge() {
        let l = lex("// LOCK-RANK(40): first line\n// continuation line\nlet x = 1;\n// separate\nlet y = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 2);
        assert!(l.comments[0].text.contains("LOCK-RANK"));
        assert!(l.comments[0].text.contains("continuation"));
        assert_eq!(l.comments[1].line, 4);
        assert_eq!(l.comments[1].end_line, 4);
        // A trailing comment does not join the run below it.
        let l = lex("let a = 1; // trailing\n// full line\nlet b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].end_line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* nested */ still comment */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens[0].text, "fn");
    }

    #[test]
    fn strings_hide_operators() {
        let l = lex(r#"let s = "a == b // not a comment"; s != t"#);
        // The only `!=` token is the real one outside the string.
        let neq: Vec<_> = l.tokens.iter().filter(|t| t.text == "!=").collect();
        assert_eq!(neq.len(), 1);
        assert!(l.comments.is_empty());
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"contains "quote" and == inside"#; x == y"###);
        let eq: Vec<_> = l.tokens.iter().filter(|t| t.text == "==").collect();
        assert_eq!(eq.len(), 1);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "'x'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "'\\n'"));
    }

    #[test]
    fn float_vs_int_classification() {
        let toks = kinds("1 1.5 1. 2e9 3E-4 1f64 0x1F 0b101 7u32 1..2 3.min(4.0)");
        let get = |s: &str| toks.iter().find(|(_, t)| t == s).map(|(k, _)| *k);
        assert_eq!(get("1"), Some(TokKind::Int));
        assert_eq!(get("1.5"), Some(TokKind::Float));
        assert_eq!(get("1."), Some(TokKind::Float));
        assert_eq!(get("2e9"), Some(TokKind::Float));
        assert_eq!(get("3E-4"), Some(TokKind::Float));
        assert_eq!(get("1f64"), Some(TokKind::Float));
        assert_eq!(get("0x1F"), Some(TokKind::Int));
        assert_eq!(get("0b101"), Some(TokKind::Int));
        assert_eq!(get("7u32"), Some(TokKind::Int));
        // `1..2` lexes as Int, `..`, Int; `3.min` keeps 3 an Int.
        assert!(toks.iter().any(|(_, t)| t == ".."));
        assert_eq!(get("3"), Some(TokKind::Int));
        assert_eq!(get("4.0"), Some(TokKind::Float));
    }

    #[test]
    fn multi_char_ops_are_single_tokens() {
        let toks = kinds("a == b != c -> d => e :: f ..= g");
        for op in ["==", "!=", "->", "=>", "::", "..="] {
            assert!(
                toks.iter().any(|(k, t)| *k == TokKind::Punct && t == op),
                "{op}"
            );
        }
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let l = lex("let a = \"line1\nline2\";\nlet b = 1;");
        let b = l.tokens.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b.line, 3);
    }
}
