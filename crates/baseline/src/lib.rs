//! # tripro-baseline
//!
//! A PostGIS-style stand-in used by the Fig 13 comparison (paper §6.6).
//!
//! **Substitution note (see DESIGN.md):** running actual PostGIS is outside
//! this reproduction's environment, so this crate mimics how a generic
//! spatial DBMS processes 3D joins, reproducing exactly the algorithmic
//! deficits Fig 13 attributes to it:
//!
//! * geometry is stored **serialised at full resolution** — no LODs — and,
//!   like PostGIS evaluating `ST_3DIntersects(a, b)` row by row, every
//!   predicate call first *deserialises* ("detoasts") both operands;
//! * the only index is an R-tree over whole-object MBBs;
//! * refinement is **brute-force over all face pairs**, single-threaded;
//! * there is no decode cache and no intra-geometry index;
//! * nearest-neighbour has **no index support**: as in §6.6, the caller
//!   supplies a buffer distance, candidates are fetched by intersecting the
//!   buffered MBB, and all candidate distances are computed.

use tripro_geom::{tri_tri_dist2, tri_tri_intersect, Aabb, Triangle};
use tripro_index::RTree;
use tripro_mesh::TriMesh;

/// One stored full-resolution object: MBB plus the serialised geometry
/// (little-endian `f64` triangle soup, the WKB-like on-disk form).
pub struct BaselineObject {
    pub mbb: Aabb,
    blob: Vec<u8>,
    face_count: usize,
}

impl BaselineObject {
    fn serialize(faces: &[Triangle]) -> Vec<u8> {
        let mut blob = Vec::with_capacity(faces.len() * 72);
        for t in faces {
            for p in t.vertices() {
                blob.extend_from_slice(&p.x.to_le_bytes());
                blob.extend_from_slice(&p.y.to_le_bytes());
                blob.extend_from_slice(&p.z.to_le_bytes());
            }
        }
        blob
    }

    /// Deserialise the geometry — performed per predicate evaluation, the
    /// way PostGIS detoasts each operand per row.
    pub fn deserialize(&self) -> Vec<Triangle> {
        let mut out = Vec::with_capacity(self.face_count);
        let f = |s: &[u8]| f64::from_le_bytes(s.try_into().unwrap());
        for c in self.blob.chunks_exact(72) {
            out.push(Triangle::new(
                tripro_geom::vec3(f(&c[0..8]), f(&c[8..16]), f(&c[16..24])),
                tripro_geom::vec3(f(&c[24..32]), f(&c[32..40]), f(&c[40..48])),
                tripro_geom::vec3(f(&c[48..56]), f(&c[56..64]), f(&c[64..72])),
            ));
        }
        out
    }
}

/// An in-memory table of 3D objects with an MBB index.
pub struct BaselineDb {
    objects: Vec<BaselineObject>,
    rtree: RTree<u32>,
}

impl BaselineDb {
    /// Load meshes at full resolution (serialised form).
    pub fn load(meshes: &[TriMesh]) -> Self {
        let objects: Vec<BaselineObject> = meshes
            .iter()
            .map(|m| {
                let faces = m.triangles();
                BaselineObject {
                    mbb: m.aabb(),
                    blob: BaselineObject::serialize(&faces),
                    face_count: faces.len(),
                }
            })
            .collect();
        let rtree = RTree::bulk_load(
            objects
                .iter()
                .enumerate()
                .map(|(i, o)| (o.mbb, i as u32))
                .collect(),
        );
        Self { objects, rtree }
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Raw geometry bytes resident in memory (the cost PostGIS pays for
    /// keeping full-resolution geometry around).
    pub fn resident_bytes(&self) -> usize {
        self.objects.iter().map(|o| o.blob.len()).sum()
    }

    fn intersects_pair(a: &BaselineObject, b: &BaselineObject) -> bool {
        // Per-row detoast, exactly like a SQL predicate evaluation.
        let fa = a.deserialize();
        let fb = b.deserialize();
        for x in &fa {
            for y in &fb {
                if tri_tri_intersect(x, y) {
                    return true;
                }
            }
        }
        // Containment fallback: MBB containment plus a vertex test.
        if a.mbb.contains_box(&b.mbb) && tripro_geom::point_in_mesh(fb[0].a, &fa) {
            return true;
        }
        if b.mbb.contains_box(&a.mbb) && tripro_geom::point_in_mesh(fa[0].a, &fb) {
            return true;
        }
        false
    }

    fn dist2_pair(a: &BaselineObject, b: &BaselineObject) -> f64 {
        let fa = a.deserialize();
        let fb = b.deserialize();
        let mut best = f64::INFINITY;
        for x in &fa {
            for y in &fb {
                let d2 = tri_tri_dist2(x, y);
                if d2 < best {
                    best = d2;
                    if tripro_geom::is_exactly_zero(best) {
                        return 0.0;
                    }
                }
            }
        }
        best
    }

    /// Intersection join: for each object of `self`, the objects of `other`
    /// it intersects. Single-threaded MBB filter + brute-force refine.
    pub fn intersection_join(&self, other: &BaselineDb) -> Vec<(u32, Vec<u32>)> {
        let mut out = Vec::with_capacity(self.len());
        for (t, obj) in self.objects.iter().enumerate() {
            let mut hits = Vec::new();
            for c in other.rtree.query_intersects(&obj.mbb) {
                if Self::intersects_pair(obj, &other.objects[c as usize]) {
                    hits.push(c);
                }
            }
            hits.sort_unstable();
            out.push((t as u32, hits));
        }
        out
    }

    /// Within join at distance `d`.
    pub fn within_join(&self, other: &BaselineDb, d: f64) -> Vec<(u32, Vec<u32>)> {
        let d2 = d * d;
        let mut out = Vec::with_capacity(self.len());
        for (t, obj) in self.objects.iter().enumerate() {
            let window = obj.mbb.inflate(d);
            let mut hits = Vec::new();
            for c in other.rtree.query_intersects(&window) {
                if Self::dist2_pair(obj, &other.objects[c as usize]) <= d2 {
                    hits.push(c);
                }
            }
            hits.sort_unstable();
            out.push((t as u32, hits));
        }
        out
    }

    /// Nearest-neighbour join emulated PostGIS-style (§6.6): candidates are
    /// everything whose MBB intersects the target MBB inflated by `buffer`;
    /// all candidate distances are computed and the minimum wins. A buffer
    /// that is too small yields `None` for that target.
    pub fn nn_join_with_buffer(&self, other: &BaselineDb, buffer: f64) -> Vec<(u32, Option<u32>)> {
        let mut out = Vec::with_capacity(self.len());
        for (t, obj) in self.objects.iter().enumerate() {
            let window = obj.mbb.inflate(buffer);
            let mut best: Option<(f64, u32)> = None;
            for c in other.rtree.query_intersects(&window) {
                let d2 = Self::dist2_pair(obj, &other.objects[c as usize]);
                if best.map_or(true, |(bd, bc)| d2 < bd || (d2 == bd && c < bc)) {
                    best = Some((d2, c));
                }
            }
            out.push((t as u32, best.map(|(_, c)| c)));
        }
        out
    }

    /// A valid NN buffer for `self ⋈ other`: the maximum over targets of the
    /// MBB-based guaranteed-containing distance. The paper derives its
    /// buffer from true NN distances computed by 3DPro; this bound needs no
    /// other system and always contains the true neighbour.
    pub fn safe_nn_buffer(&self, other: &BaselineDb) -> f64 {
        let mut buffer = 0.0f64;
        for obj in &self.objects {
            // Distance to the nearest candidate by MAXDIST: the true NN is
            // within this bound.
            let mut best = f64::INFINITY;
            for o in &other.objects {
                best = best.min(obj.mbb.max_dist(&o.mbb));
            }
            if best.is_finite() {
                buffer = buffer.max(best);
            }
        }
        buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;
    use tripro_mesh::testutil::sphere;

    fn dbs() -> (BaselineDb, BaselineDb) {
        let t = BaselineDb::load(&[
            sphere(vec3(0.0, 0.0, 0.0), 2.0, 2),
            sphere(vec3(10.0, 0.0, 0.0), 2.0, 2),
        ]);
        let s = BaselineDb::load(&[
            sphere(vec3(0.5, 0.0, 0.0), 2.0, 2),
            // Gap to t1's surface: 13.5 - 1 - 12 = 0.5 exactly (both
            // surfaces have a vertex on the x axis).
            sphere(vec3(13.5, 0.0, 0.0), 1.0, 2),
            sphere(vec3(40.0, 0.0, 0.0), 2.0, 2),
        ]);
        (t, s)
    }

    #[test]
    fn intersection() {
        let (t, s) = dbs();
        let res = t.intersection_join(&s);
        assert_eq!(res[0].1, vec![0]);
        assert!(res[1].1.is_empty());
    }

    #[test]
    fn containment_detected() {
        let t = BaselineDb::load(&[sphere(vec3(0.0, 0.0, 0.0), 4.0, 2)]);
        let s = BaselineDb::load(&[sphere(vec3(0.0, 0.0, 0.0), 1.0, 1)]);
        assert_eq!(t.intersection_join(&s)[0].1, vec![0]);
    }

    #[test]
    fn within() {
        let (t, s) = dbs();
        // t1 at x=10 (r=2) to s1 at x=13.5 (r=1): gap 0.5.
        let res = t.within_join(&s, 0.5);
        assert_eq!(res[0].1, vec![0]);
        assert_eq!(res[1].1, vec![1]);
        let res = t.within_join(&s, 30.0);
        assert_eq!(res[1].1, vec![0, 1, 2]);
    }

    #[test]
    fn nn_with_buffer() {
        let (t, s) = dbs();
        let buffer = t.safe_nn_buffer(&s);
        let res = t.nn_join_with_buffer(&s, buffer);
        assert_eq!(res[0].1, Some(0));
        assert_eq!(res[1].1, Some(1));
        // Tiny buffer still finds overlapping neighbours.
        let res = t.nn_join_with_buffer(&s, 0.0);
        assert_eq!(res[0].1, Some(0));
    }

    #[test]
    fn resident_size_reflects_full_resolution() {
        let (t, _) = dbs();
        assert_eq!(
            t.resident_bytes(),
            2 * 128 * std::mem::size_of::<Triangle>()
        );
    }

    #[test]
    fn empty_db() {
        let e = BaselineDb::load(&[]);
        assert!(e.is_empty());
        let (t, _) = dbs();
        assert!(t.intersection_join(&e).iter().all(|(_, v)| v.is_empty()));
        assert!(t
            .nn_join_with_buffer(&e, 10.0)
            .iter()
            .all(|(_, n)| n.is_none()));
    }
}
