//! `tripro` — command-line front end for the 3DPro engine.
//!
//! ```text
//! tripro generate --out DIR [--nuclei N] [--vessels V] [--seed S]
//! tripro build    --in DIR --out DIR [--bits B] [--lods L]
//! tripro info     --store DIR
//! tripro lods     --store DIR --id N --out DIR
//! tripro query intersect --target DIR --source DIR [--fr] [--accel A]
//! tripro query within    --target DIR --source DIR --distance D [...]
//! tripro query nn        --target DIR --source DIR [--k K] [...]
//! tripro serve           --target DIR --source DIR [--addr A] [...]
//! tripro metrics         [--addr A] [--check] [--stages]
//! tripro trace           --target DIR --source DIR --slow MS [--kind K] | --addr A
//! ```

mod args;
mod commands;
mod error;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn run(argv: &[String]) -> Result<(), error::CliError> {
    match argv.first().map(String::as_str) {
        Some("generate") => commands::generate(&args::Parsed::parse(&argv[1..])?),
        Some("build") => commands::build(&args::Parsed::parse(&argv[1..])?),
        Some("info") => commands::info(&args::Parsed::parse(&argv[1..])?),
        Some("lods") => commands::lods(&args::Parsed::parse(&argv[1..])?),
        Some("render") => commands::render(&args::Parsed::parse(&argv[1..])?),
        Some("serve") => commands::serve(&args::Parsed::parse(&argv[1..])?),
        Some("metrics") => commands::metrics(&args::Parsed::parse(&argv[1..])?),
        Some("trace") => commands::trace(&args::Parsed::parse(&argv[1..])?),
        Some("query") => {
            let kind = argv
                .get(1)
                .ok_or("query needs a subcommand: intersect|within|nn")?;
            commands::query(kind, &args::Parsed::parse(&argv[2..])?)
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", HELP);
            Ok(())
        }
        Some(other) => Err(error::CliError::msg(format!(
            "unknown command {other:?}; try `tripro help`"
        ))),
    }
}

const HELP: &str = "\
tripro — progressive 3D spatial query engine (3DPro reproduction)

USAGE:
  tripro generate --out DIR [--nuclei N] [--vessels V] [--seed S] [--grid G]
      Generate a synthetic tissue block and write OBJ meshes into
      DIR/nuclei_a, DIR/nuclei_b, DIR/vessels.

  tripro build --in DIR --out DIR [--bits B] [--lods L] [--cuboid C] [--repair]
      PPVP-compress every .obj/.off under IN (recursively) into a store.
      --repair welds duplicates and normalises winding first.

  tripro info --store DIR
      Print object counts, LOD ladders, compressed sizes.

  tripro lods --store DIR --id N --out DIR
      Export every LOD of one object as OBJ files.

  tripro render --store DIR --id N --out FILE.ppm [--lod L] [--size S]
      Render one object (at LOD L, default full) to a PPM image.

  tripro query intersect --target DIR --source DIR [--fr] [--accel A] [--threads T]
  tripro query within    --target DIR --source DIR --distance D [--fr] [--accel A]
  tripro query nn        --target DIR --source DIR [--k K] [--fr] [--accel A]
  tripro query contains  --target DIR --source DIR --x X --y Y --z Z
      Run a spatial join between two stores (contains probes only the
      target store). Default paradigm is FPR (progressive); --fr selects
      classical Filter-Refine.
      A = brute | partition | aabb | gpu | partition-gpu | obb (default: aabb)

  tripro serve --target DIR --source DIR [--addr HOST:PORT] [--fr] [--accel A]
               [--max-inflight N] [--queue-depth Q] [--max-connections C]
               [--deadline-cap-ms MS] [--duration SECS] [--trace-slow-ms MS]
               [--shard-index I --shard-count N [--epoch E]]
      Serve both stores over the tripro-serve wire protocol
      (docs/protocol.md): admission-controlled, per-cuboid batched,
      deadline-aware. Default --addr 127.0.0.1:3750. With --duration the
      server exits after SECS; otherwise it runs until a Shutdown frame
      (e.g. `tripro-load --shutdown`). With --shard-index/--shard-count
      the process serves one shard of a cluster: the source store is cut
      to this shard's boundary-replicated subset under the (epoch, cell,
      count) shard map shared with the coordinator (docs/sharding.md).

  tripro serve --coordinator --target DIR --shards HOST:PORT,HOST:PORT,...
               [--addr HOST:PORT] [--epoch E] [--max-inflight N]
               [--per-shard-budget B] [--allow-partial]
               [--deadline-cap-ms MS] [--duration SECS]
      Front a set of shard engines with a scatter-gather coordinator:
      single-object queries route to owning shards, joins fan out and
      merge byte-identically to a single engine. Backends are validated
      (epoch, shard map, dataset fingerprints) before serving.
      --allow-partial lets kNN answer with a partial-flagged result when
      a shard fails instead of a typed error.

  tripro metrics [--addr HOST:PORT] [--check] [--stages]
      Fetch a running server's metrics registry (a v2 Metrics frame) and
      print the Prometheus text exposition. Pointed at a coordinator, the
      exposition is federated: every shard is scraped over v6 MetricsBin
      frames and exact-merged into one document with a node label (plus a
      node=\"cluster\" aggregate). --check validates the exposition format
      and fails on malformed output. --stages instead issues a v3 StatsEx
      frame and prints the pipelined executor's per-stage wall time, item
      counts and queue-full stalls. Default --addr 127.0.0.1:3750. See
      docs/observability.md for the metric inventory.

  tripro trace --target DIR --source DIR [--slow MS] [--kind intersect|within|nn|knn]
               [--keep N] [--fr] [--accel A] [--k K] [--distance D]
      Run one query per target object with span tracing enabled and print
      the slow-query log: the N worst (default 8) request traces at or
      over the MS threshold (default 0 = trace everything), rendered as
      indented span trees (filter, refine rounds, decodes, pool tasks).

  tripro trace --addr HOST:PORT
      Instead fetch the slow-query log of a running server over a v6
      TraceLog frame. On a coordinator each entry is a stitched cluster
      waterfall: per-shard span summaries render as shard subtrees under
      the coordinator's root span, all under one trace id.
";
