//! CLI subcommand implementations.

use crate::args::Parsed;
use crate::error::CliError;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Print a line to stdout, exiting quietly on a closed pipe (e.g. `| head`).
macro_rules! outln {
    ($($arg:tt)*) => {{
        let mut stdout = std::io::stdout().lock();
        if writeln!(stdout, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}
use tripro::{Accel, Engine, ExecStats, ObjectStore, Paradigm, QueryConfig, StoreConfig};
use tripro_mesh::{load_mesh, save_obj, EncoderConfig, TriMesh};
use tripro_synth::{DatasetConfig, VesselConfig};

/// `tripro generate` — synthesize a tissue block as OBJ directories.
pub fn generate(a: &Parsed) -> Result<(), CliError> {
    let out = PathBuf::from(a.require("out")?);
    let cfg = DatasetConfig {
        nuclei_count: a.get_parsed("nuclei", 200usize)?,
        vessel_count: a.get_parsed("vessels", 2usize)?,
        seed: a.get_parsed("seed", 0x3D9E0u64)?,
        vessel: VesselConfig {
            grid: a.get_parsed("grid", 32usize)?,
            levels: a.get_parsed("levels", 3usize)?,
            ..Default::default()
        },
        ..Default::default()
    };
    eprintln!(
        "generating {} nuclei (x2 segmentations) and {} vessels...",
        cfg.nuclei_count, cfg.vessel_count
    );
    let block = tripro_synth::generate(&cfg);
    for (sub, meshes) in [
        ("nuclei_a", &block.nuclei_a),
        ("nuclei_b", &block.nuclei_b),
        ("vessels", &block.vessels),
    ] {
        let dir = out.join(sub);
        std::fs::create_dir_all(&dir)?;
        for (i, m) in meshes.iter().enumerate() {
            save_obj(dir.join(format!("{sub}_{i:06}.obj")), m)
                .map_err(|e| CliError::msg(e.to_string()))?;
        }
        eprintln!("  wrote {} meshes to {}", meshes.len(), dir.display());
    }
    Ok(())
}

fn collect_meshes(dir: &Path) -> Result<Vec<(PathBuf, TriMesh)>, CliError> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for e in
            std::fs::read_dir(&d).map_err(|e| CliError::msg(format!("{}: {e}", d.display())))?
        {
            let p = e?.path();
            if p.is_dir() {
                stack.push(p);
            } else if matches!(
                p.extension()
                    .and_then(|x| x.to_str())
                    .map(str::to_ascii_lowercase)
                    .as_deref(),
                Some("obj") | Some("off")
            ) {
                files.push(p);
            }
        }
    }
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for p in files {
        let m = load_mesh(&p).map_err(|e| CliError::msg(format!("{}: {e}", p.display())))?;
        out.push((p, m));
    }
    Ok(out)
}

/// `tripro build` — compress a directory of meshes into a store.
pub fn build(a: &Parsed) -> Result<(), CliError> {
    let input = PathBuf::from(a.require("in")?);
    let out = PathBuf::from(a.require("out")?);
    let mut meshes = collect_meshes(&input)?;
    if meshes.is_empty() {
        return Err(CliError::msg(format!(
            "no .obj/.off meshes under {}",
            input.display()
        )));
    }
    if a.has("repair") {
        let mut flipped_total = 0usize;
        for (path, m) in &mut meshes {
            tripro_mesh::remove_duplicate_faces(m);
            m.weld(0.0);
            flipped_total += tripro_mesh::fix_orientation(m)
                .map_err(|e| CliError::msg(format!("{}: {e}", path.display())))?;
        }
        eprintln!("repair: normalised winding ({flipped_total} faces flipped)");
    }
    eprintln!("compressing {} meshes...", meshes.len());
    let cfg = StoreConfig {
        encoder: EncoderConfig {
            bits: a.get_parsed("bits", 16u32)?,
            max_lod: a.get_parsed("lods", 5usize)?,
            ..Default::default()
        },
        ..Default::default()
    };
    let only: Vec<TriMesh> = meshes.iter().map(|(_, m)| m.clone()).collect();
    let t0 = std::time::Instant::now();
    let store = ObjectStore::build(&only, &cfg).map_err(|e| {
        CliError::msg(format!(
            "encoding failed (meshes must be closed orientable manifolds): {e}"
        ))
    })?;
    let cell: f64 = a.get_parsed("cuboid", 1e18f64)?;
    store.save_dir(&out, cell)?;
    eprintln!(
        "built store: {} objects, {} KiB compressed, {:?}; saved to {}",
        store.len(),
        store.compressed_bytes() / 1024,
        t0.elapsed(),
        out.display()
    );
    Ok(())
}

/// `tripro info` — summarize a store.
pub fn info(a: &Parsed) -> Result<(), CliError> {
    let store = load_store(a.require("store")?)?;
    outln!("objects:            {}", store.len());
    outln!("compressed bytes:   {}", store.compressed_bytes());
    outln!("full-LOD faces:     {}", store.total_full_faces());
    outln!("max LOD:            {}", store.max_lod_overall());
    let bb = store.rtree().bounds();
    outln!(
        "bounds:             {:?} .. {:?}",
        bb.lo.to_array(),
        bb.hi.to_array()
    );
    // LOD ladder histogram.
    let mut ladders = std::collections::BTreeMap::new();
    for id in 0..store.len() as u32 {
        *ladders.entry(store.max_lod(id)).or_insert(0usize) += 1;
    }
    for (lod, n) in ladders {
        outln!("  {n} objects reach LOD {lod}");
    }
    Ok(())
}

/// `tripro lods` — export every LOD of one object.
pub fn lods(a: &Parsed) -> Result<(), CliError> {
    let store = load_store(a.require("store")?)?;
    let id: u32 = a.get_parsed("id", 0u32)?;
    if id as usize >= store.len() {
        return Err(CliError::msg(format!(
            "object {id} out of range (store has {})",
            store.len()
        )));
    }
    let out = PathBuf::from(a.require("out")?);
    std::fs::create_dir_all(&out)?;
    let stats = ExecStats::new();
    for lod in 0..=store.max_lod(id) {
        let data = store.get(id, lod, &stats)?;
        let tris = data.triangles.as_ref();
        let mut tm = TriMesh::default();
        for t in tris {
            let base = tm.vertices.len() as u32;
            tm.vertices.extend(t.vertices());
            tm.faces.push([base, base + 1, base + 2]);
        }
        let path = out.join(format!("object{id}_lod{lod}.obj"));
        save_obj(&path, &tm).map_err(|e| CliError::msg(e.to_string()))?;
        outln!("LOD {lod}: {} faces -> {}", tris.len(), path.display());
    }
    Ok(())
}

/// `tripro render` — rasterise one object to a PPM image.
pub fn render(a: &Parsed) -> Result<(), CliError> {
    let store = load_store(a.require("store")?)?;
    let id: u32 = a.get_parsed("id", 0u32)?;
    if id as usize >= store.len() {
        return Err(CliError::msg(format!(
            "object {id} out of range (store has {})",
            store.len()
        )));
    }
    let out = a.require("out")?;
    let size: usize = a.get_parsed("size", 640usize)?;
    let lod: usize = a.get_parsed("lod", store.max_lod(id))?;
    let stats = ExecStats::new();
    let data = store.get(id, lod, &stats)?;
    let cam = tripro_viz::Camera::isometric(store.mbb(id));
    let opts = tripro_viz::RenderOptions {
        width: size,
        height: size,
        ..Default::default()
    };
    let img = tripro_viz::render_triangles(&data.triangles, &cam, &opts);
    img.save_ppm(out)?;
    eprintln!(
        "rendered object {id} LOD {} ({} faces) to {out}",
        lod.min(store.max_lod(id)),
        data.triangles.len()
    );
    Ok(())
}

fn load_store(dir: &str) -> Result<ObjectStore, CliError> {
    ObjectStore::load_dir(Path::new(dir), 256 << 20)
        .map_err(|e| CliError::msg(format!("{dir}: {e}")))
}

fn accel_of(a: &Parsed) -> Result<Accel, CliError> {
    Ok(match a.get("accel").unwrap_or("aabb") {
        "brute" => Accel::Brute,
        "partition" => Accel::Partition,
        "aabb" => Accel::Aabb,
        "gpu" => Accel::Gpu,
        "partition-gpu" => Accel::PartitionGpu,
        "obb" => Accel::ObbTree,
        other => return Err(CliError::msg(format!("unknown --accel {other:?}"))),
    })
}

/// `tripro query <kind>` — run a join between two stores.
pub fn query(kind: &str, a: &Parsed) -> Result<(), CliError> {
    let target = load_store(a.require("target")?)?;
    let source = load_store(a.require("source")?)?;
    let paradigm = if a.has("fr") {
        Paradigm::FilterRefine
    } else {
        Paradigm::FilterProgressiveRefine
    };
    let cfg =
        QueryConfig::new(paradigm, accel_of(a)?).with_threads(a.get_parsed("threads", 1usize)?);
    let engine = Engine::new(&target, &source);
    let t0 = std::time::Instant::now();
    match kind {
        "intersect" => {
            let (pairs, stats) = engine.intersection_join(&cfg)?;
            report(&pairs, t0.elapsed(), &stats);
        }
        "within" => {
            let d: f64 = a
                .require("distance")?
                .parse()
                .map_err(|_| CliError::msg("bad --distance"))?;
            let (pairs, stats) = engine.within_join(d, &cfg)?;
            report(&pairs, t0.elapsed(), &stats);
        }
        "nn" => {
            let k: usize = a.get_parsed("k", 1usize)?;
            if k == 1 {
                let (pairs, stats) = engine.nn_join(&cfg)?;
                for (t, n) in &pairs {
                    outln!("{t}\t{}", n.map_or(-1i64, |v| v as i64));
                }
                summary(t0.elapsed(), &stats);
            } else {
                let (pairs, stats) = engine.knn_join(k, &cfg)?;
                report(&pairs, t0.elapsed(), &stats);
            }
        }
        "contains" => {
            // Point containment against the *target* store only.
            let p = tripro_geom::vec3(
                a.require("x")?
                    .parse()
                    .map_err(|_| CliError::msg("bad --x"))?,
                a.require("y")?
                    .parse()
                    .map_err(|_| CliError::msg("bad --y"))?,
                a.require("z")?
                    .parse()
                    .map_err(|_| CliError::msg("bad --z"))?,
            );
            let q = tripro::PointQuery::new(&target);
            let stats = ExecStats::new();
            let hits = q.containing(p, &cfg, &stats)?;
            for id in &hits {
                outln!("{id}");
            }
            summary(t0.elapsed(), &stats);
        }
        other => {
            return Err(CliError::msg(format!(
                "unknown query kind {other:?}; use intersect|within|nn|contains"
            )))
        }
    }
    Ok(())
}

/// `tripro serve` — expose two stores over the wire protocol, either as
/// a standalone engine, one shard of a cluster (`--shard-index` /
/// `--shard-count`), or the coordinator fronting one (`--coordinator`).
pub fn serve(a: &Parsed) -> Result<(), CliError> {
    use std::sync::Arc;
    use std::time::Duration;
    use tripro_serve::{ServeConfig, Server};

    // Arm fault-injection failpoints from TRIPRO_FAILPOINTS before any
    // request can hit an instrumented site (chaos/soak testing knob; a
    // malformed spec aborts startup rather than silently running clean).
    let armed_sites = tripro::fault::init_from_env()
        .map_err(|e| CliError::msg(format!("TRIPRO_FAILPOINTS: {e}")))?;
    if armed_sites > 0 {
        eprintln!("fault injection: {armed_sites} failpoint(s) armed from TRIPRO_FAILPOINTS");
    }

    if a.has("coordinator") {
        return serve_coordinator(a);
    }

    let target = Arc::new(load_store(a.require("target")?)?);
    let source = load_store(a.require("source")?)?;

    // Shard mode: cut the source store down to this shard's replica set
    // under the shared (epoch, cell, count) map before serving.
    let shard_count: u32 = a.get_parsed("shard-count", 1u32)?;
    let (source, shard, source_ids) = if shard_count > 1 {
        let index: u32 = a.get_parsed("shard-index", 0u32)?;
        if index >= shard_count {
            return Err(CliError::msg(format!(
                "--shard-index {index} out of range for --shard-count {shard_count}"
            )));
        }
        let epoch: u64 = a.get_parsed("epoch", 1u64)?;
        let map = tripro_serve::ShardMap::new(
            epoch,
            tripro_serve::ShardMap::cell_for(&target),
            shard_count,
        );
        let source_total = source.len() as u64;
        let (local, ids) = tripro_serve::partition_source(source, &map, index, 256 << 20);
        eprintln!(
            "shard {index}/{shard_count} (epoch {epoch}): holds {} of {source_total} \
             source objects after boundary replication",
            local.len()
        );
        (
            Arc::new(local),
            Some(tripro_serve::ShardView {
                map,
                index,
                source_total,
            }),
            Some(ids),
        )
    } else {
        (Arc::new(source), None, None)
    };

    let defaults = ServeConfig::default();
    let mut cfg = ServeConfig {
        addr: a.get("addr").unwrap_or("127.0.0.1:3750").to_string(),
        paradigm: if a.has("fr") {
            Paradigm::FilterRefine
        } else {
            Paradigm::FilterProgressiveRefine
        },
        accel: accel_of(a)?,
        max_inflight: a.get_parsed("max-inflight", defaults.max_inflight)?,
        queue_depth: a.get_parsed("queue-depth", defaults.queue_depth)?,
        max_connections: a.get_parsed("max-connections", defaults.max_connections)?,
        shard,
        source_ids,
        ..defaults
    };
    let cap_ms: u64 = a.get_parsed("deadline-cap-ms", 0u64)?;
    if cap_ms > 0 {
        cfg.deadline_cap = Some(Duration::from_millis(cap_ms));
    }
    let inject_ms: u64 = a.get_parsed("inject-latency-ms", 0u64)?;
    if inject_ms > 0 {
        cfg.inject_latency = Some(Duration::from_millis(inject_ms));
    }
    // Flag *presence* enables tracing, so an explicit `--trace-slow-ms 0`
    // means "trace every request" (the smoke gates rely on this).
    if a.get("trace-slow-ms").is_some() {
        let trace_slow_ms: u64 = a.get_parsed("trace-slow-ms", 0u64)?;
        cfg.trace = tripro::TraceConfig {
            enabled: true,
            slow_threshold: Duration::from_millis(trace_slow_ms),
            ..Default::default()
        };
    }

    let (n_target, n_source) = (target.len(), source.len());
    let server = Server::start(target, source, cfg)?;
    eprintln!(
        "serving on {} ({n_target} target / {n_source} source objects); \
         send a Shutdown frame to stop",
        server.addr()
    );
    let duration_s: u64 = a.get_parsed("duration", 0u64)?;
    if duration_s > 0 {
        std::thread::sleep(Duration::from_secs(duration_s));
    } else {
        // tripro_lint::allow(condvar_wait_loop): Server::wait is a blocking
        // join API (it owns its predicate loop internally), not a raw
        // Condvar wait.
        server.wait();
    }
    let s = server.stats();
    eprintln!(
        "served: {} admitted, {} completed, {} failed ({} from contained panics), \
         {} shed, {} deadline-expired, {} protocol errors",
        s.admitted, s.completed, s.failed, s.panics, s.shed, s.deadline_expired, s.protocol_errors
    );
    server.shutdown();
    Ok(())
}

/// `tripro serve --coordinator` — front a set of shard engines with a
/// scatter-gather coordinator. Loads the target store only (routing needs
/// MBBs, never geometry); backends are validated over `ShardInfo` before
/// the listener opens.
fn serve_coordinator(a: &Parsed) -> Result<(), CliError> {
    use std::sync::Arc;
    use std::time::Duration;
    use tripro_serve::{Coordinator, CoordinatorConfig};

    let target = Arc::new(load_store(a.require("target")?)?);
    let shards: Vec<String> = a
        .require("shards")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        return Err(CliError::msg("--shards needs at least one host:port"));
    }

    let defaults = CoordinatorConfig::default();
    let mut cfg = CoordinatorConfig {
        addr: a.get("addr").unwrap_or("127.0.0.1:3750").to_string(),
        shards,
        epoch: a.get_parsed("epoch", 1u64)?,
        max_inflight: a.get_parsed("max-inflight", defaults.max_inflight)?,
        per_shard_budget: a.get_parsed("per-shard-budget", defaults.per_shard_budget)?,
        max_connections: a.get_parsed("max-connections", defaults.max_connections)?,
        allow_partial: a.has("allow-partial"),
        ..defaults
    };
    let cap_ms: u64 = a.get_parsed("deadline-cap-ms", 0u64)?;
    if cap_ms > 0 {
        cfg.deadline_cap = Some(Duration::from_millis(cap_ms));
    }
    // Presence enables tracing; an explicit 0 traces every request.
    if a.get("trace-slow-ms").is_some() {
        let trace_slow_ms: u64 = a.get_parsed("trace-slow-ms", 0u64)?;
        cfg.trace = tripro::TraceConfig {
            enabled: true,
            slow_threshold: Duration::from_millis(trace_slow_ms),
            ..Default::default()
        };
    }

    let n_shards = cfg.shards.len();
    let coord = Coordinator::start(target, cfg).map_err(|e| CliError::msg(e.to_string()))?;
    eprintln!(
        "coordinating {n_shards} shard(s) on {} (epoch {}); \
         send a Shutdown frame to stop",
        coord.addr(),
        coord.shard_map().epoch
    );
    let duration_s: u64 = a.get_parsed("duration", 0u64)?;
    if duration_s > 0 {
        std::thread::sleep(Duration::from_secs(duration_s));
    } else {
        // tripro_lint::allow(condvar_wait_loop): Coordinator::wait is a
        // blocking join API (it owns its predicate loop internally), not a
        // raw Condvar wait.
        coord.wait();
    }
    let s = coord.stats();
    eprintln!(
        "coordinated: {} admitted, {} completed, {} failed ({} from contained panics), \
         {} shed, {} deadline-expired, {} protocol errors",
        s.admitted, s.completed, s.failed, s.panics, s.shed, s.deadline_expired, s.protocol_errors
    );
    coord.shutdown();
    Ok(())
}

/// `tripro metrics` — scrape a running server's Metrics frame and print
/// the Prometheus text exposition.
pub fn metrics(a: &Parsed) -> Result<(), CliError> {
    let addr = a.get("addr").unwrap_or("127.0.0.1:3750");
    let mut client =
        tripro_serve::Client::connect(addr).map_err(|e| CliError::msg(format!("{addr}: {e}")))?;
    if a.has("stages") {
        let s = client
            .stats_ex()
            .map_err(|e| CliError::msg(format!("stats-ex request failed: {e}")))?;
        eprintln!(
            "service: {} admitted, {} completed, {} failed, {} shed, \
             {} deadline-expired, {} protocol errors",
            s.admitted, s.completed, s.failed, s.shed, s.deadline_expired, s.protocol_errors
        );
        outln!("stage\tbusy_s\titems");
        for (i, name) in tripro::stats::STAGE_NAMES.iter().enumerate() {
            outln!(
                "{name}\t{:.3}\t{}",
                s.stage_ns[i] as f64 / 1e9,
                s.stage_items[i]
            );
        }
        outln!("queue\tstalls");
        for (i, name) in ["gen_decode", "decode_build", "build_eval"]
            .iter()
            .enumerate()
        {
            outln!("{name}\t{}", s.queue_stalls[i]);
        }
        return Ok(());
    }
    let text = client
        .metrics()
        .map_err(|e| CliError::msg(format!("metrics request failed: {e}")))?;
    if a.has("check") {
        tripro::obs::validate_exposition(&text)
            .map_err(|e| CliError::msg(format!("malformed exposition: {e}")))?;
        eprintln!("exposition OK ({} bytes)", text.len());
    }
    outln!("{}", text.trim_end());
    Ok(())
}

/// `tripro trace` — run queries between two stores with span tracing
/// enabled and print the slow-query log: the worst request traces as
/// indented span trees.
pub fn trace(a: &Parsed) -> Result<(), CliError> {
    use tripro::obs;

    // Remote mode: fetch the slow-query log of a running server or
    // coordinator over a `TraceLog` frame. On a coordinator the entries
    // are stitched cross-node waterfalls — each shard's span summary
    // appears as a `shard` subtree under the coordinator's root span.
    if let Some(addr) = a.get("addr") {
        let mut client = tripro_serve::Client::connect(addr)
            .map_err(|e| CliError::msg(format!("{addr}: {e}")))?;
        let text = client
            .trace_log()
            .map_err(|e| CliError::msg(format!("trace-log request failed: {e}")))?;
        if text.trim().is_empty() {
            eprintln!("slow-query log at {addr} is empty (no sampled request over threshold yet)");
        } else {
            outln!("{}", text.trim_end());
        }
        return Ok(());
    }

    let target = load_store(a.require("target")?)?;
    let source = load_store(a.require("source")?)?;
    let slow_ms: u64 = a.get_parsed("slow", 0u64)?;
    let keep: usize = a.get_parsed("keep", 8usize)?;
    obs::tracer().configure(&tripro::TraceConfig {
        enabled: true,
        slow_threshold: std::time::Duration::from_millis(slow_ms),
        keep,
        ..Default::default()
    });
    obs::tracer().clear_slow_log();

    let paradigm = if a.has("fr") {
        Paradigm::FilterRefine
    } else {
        Paradigm::FilterProgressiveRefine
    };
    let cfg = QueryConfig::new(paradigm, accel_of(a)?);
    let engine = Engine::new(&target, &source);
    let stats = ExecStats::new();
    let kind = a.get("kind").unwrap_or("nn");
    let t0 = std::time::Instant::now();
    for t in 0..target.len() as u32 {
        // One root span per query, keyed by target id (ids are 1-based on
        // the trace so id 0 never collides with "no trace").
        let _req = obs::tracer().request(u64::from(t) + 1);
        match kind {
            "intersect" => {
                engine.intersect_one(t, &cfg, &stats)?;
            }
            "within" => {
                let d: f64 = a.get_parsed("distance", 1.0f64)?;
                engine.within_one(t, d, &cfg, &stats)?;
            }
            "nn" => {
                engine.nn_one(t, &cfg, &stats)?;
            }
            "knn" => {
                let k: usize = a.get_parsed("k", 3usize)?;
                engine.knn_one(t, k, &cfg, &stats)?;
            }
            other => {
                return Err(CliError::msg(format!(
                    "unknown --kind {other:?}; use intersect|within|nn|knn"
                )))
            }
        }
    }
    obs::tracer().set_enabled(false);

    let slow = obs::tracer().slow_log();
    eprintln!(
        "{} {kind} queries in {:?}; {} traces at or over the {slow_ms}ms threshold \
         (showing up to {keep} worst)",
        target.len(),
        t0.elapsed(),
        slow.len(),
    );
    for rec in &slow {
        outln!("{}", rec.render().trim_end());
    }
    summary(t0.elapsed(), &stats);
    Ok(())
}

fn report(pairs: &[(u32, Vec<u32>)], elapsed: std::time::Duration, stats: &ExecStats) {
    for (t, matches) in pairs {
        if !matches.is_empty() {
            let list: Vec<String> = matches.iter().map(u32::to_string).collect();
            outln!("{t}\t{}", list.join(","));
        }
    }
    summary(elapsed, stats);
}

fn summary(elapsed: std::time::Duration, stats: &ExecStats) {
    let s = stats.snapshot();
    eprintln!(
        "done in {elapsed:?} (filter {:.3}s, decode {:.3}s, geometry {:.3}s, {} face pairs, {} decodes)",
        s.filter_s(),
        s.decode_s(),
        s.compute_s(),
        s.face_pair_tests,
        s.decodes
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_parsing() {
        let parse = |v: &str| {
            let p = Parsed::parse(&["--accel".to_string(), v.to_string()]).unwrap();
            accel_of(&p)
        };
        assert_eq!(parse("brute").unwrap(), Accel::Brute);
        assert_eq!(parse("partition-gpu").unwrap(), Accel::PartitionGpu);
        assert!(parse("warp-drive").is_err());
        // Default.
        let p = Parsed::parse(&[]).unwrap();
        assert_eq!(accel_of(&p).unwrap(), Accel::Aabb);
    }

    #[test]
    fn collect_meshes_recurses_and_sorts() {
        let dir = std::env::temp_dir().join(format!("tripro_cli_test_{}", std::process::id()));
        let sub = dir.join("nested");
        std::fs::create_dir_all(&sub).unwrap();
        let tm = tripro_mesh::testutil::sphere(tripro_geom::vec3(0.0, 0.0, 0.0), 1.0, 0);
        save_obj(dir.join("b.obj"), &tm).unwrap();
        save_obj(sub.join("a.obj"), &tm).unwrap();
        std::fs::write(dir.join("ignore.txt"), "x").unwrap();
        let meshes = collect_meshes(&dir).unwrap();
        assert_eq!(meshes.len(), 2);
        assert!(meshes.iter().all(|(_, m)| m.faces.len() == 8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn collect_meshes_missing_dir_errors() {
        assert!(collect_meshes(Path::new("/nonexistent_tripro_dir")).is_err());
    }

    #[test]
    fn end_to_end_generate_build_query() {
        let dir = std::env::temp_dir().join(format!("tripro_cli_e2e_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let arg = |pairs: &[(&str, &str)]| {
            let mut v = Vec::new();
            for (k, val) in pairs {
                v.push(format!("--{k}"));
                v.push(val.to_string());
            }
            Parsed::parse(&v).unwrap()
        };
        let data = dir.join("data");
        generate(&arg(&[
            ("out", data.to_str().unwrap()),
            ("nuclei", "8"),
            ("vessels", "0"),
        ]))
        .unwrap();
        let store_a = dir.join("store_a");
        let store_b = dir.join("store_b");
        build(&arg(&[
            ("in", data.join("nuclei_a").to_str().unwrap()),
            ("out", store_a.to_str().unwrap()),
        ]))
        .unwrap();
        build(&arg(&[
            ("in", data.join("nuclei_b").to_str().unwrap()),
            ("out", store_b.to_str().unwrap()),
        ]))
        .unwrap();
        info(&arg(&[("store", store_a.to_str().unwrap())])).unwrap();
        query(
            "nn",
            &arg(&[
                ("target", store_a.to_str().unwrap()),
                ("source", store_b.to_str().unwrap()),
            ]),
        )
        .unwrap();
        let lod_dir = dir.join("lods");
        lods(&arg(&[
            ("store", store_a.to_str().unwrap()),
            ("id", "0"),
            ("out", lod_dir.to_str().unwrap()),
        ]))
        .unwrap();
        assert!(std::fs::read_dir(&lod_dir).unwrap().count() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
