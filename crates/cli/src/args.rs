//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--key value` / `--switch` arguments.
#[derive(Debug, Default)]
pub struct Parsed {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Parsed {
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut out = Parsed::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {a:?}"))?;
            // A flag followed by another flag (or nothing) is a switch.
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    out.values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    out.switches.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(out)
    }

    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("bad value for --{key}: {s:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn values_and_switches() {
        let p = Parsed::parse(&sv(&["--out", "dir", "--fr", "--k", "3"])).unwrap();
        assert_eq!(p.get("out"), Some("dir"));
        assert!(p.has("fr"));
        assert_eq!(p.get_parsed::<usize>("k", 1).unwrap(), 3);
        assert_eq!(p.get_parsed::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn require_and_errors() {
        let p = Parsed::parse(&sv(&["--a", "1"])).unwrap();
        assert!(p.require("a").is_ok());
        assert!(p.require("b").is_err());
        assert!(Parsed::parse(&sv(&["positional"])).is_err());
        let p = Parsed::parse(&sv(&["--x", "not_a_number"])).unwrap();
        assert!(p.get_parsed::<usize>("x", 0).is_err());
    }

    #[test]
    fn trailing_switch() {
        let p = Parsed::parse(&sv(&["--verbose"])).unwrap();
        assert!(p.has("verbose"));
        assert!(!p.has("quiet"));
    }
}
