//! Typed CLI errors.
//!
//! Subcommands return [`CliError`] instead of bare strings so engine and
//! transport failures keep their structure (and `source()` chain) all the
//! way to `main`, where one `Display` line is printed. Flag-parsing errors
//! from [`crate::args`] arrive as `String`s and fold into
//! [`CliError::Msg`] via `From`.

use tripro_serve::ServeError;

/// Any failure a `tripro` subcommand can surface.
#[derive(Debug)]
pub enum CliError {
    /// Usage or context message (flag parsing, file naming...).
    Msg(String),
    /// Engine failure (decode, build, query...).
    Tripro(tripro::Error),
    /// Filesystem / socket failure.
    Io(std::io::Error),
    /// Serving failure (bind, wire protocol...).
    Serve(ServeError),
}

impl CliError {
    /// A contextual message error (for sites that annotate a cause).
    pub fn msg(m: impl Into<String>) -> Self {
        CliError::Msg(m.into())
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Msg(m) => f.write_str(m),
            CliError::Tripro(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Msg(_) => None,
            CliError::Tripro(e) => Some(e),
            CliError::Io(e) => Some(e),
            CliError::Serve(e) => Some(e),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Msg(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Msg(m.to_string())
    }
}

impl From<tripro::Error> for CliError {
    fn from(e: tripro::Error) -> Self {
        CliError::Tripro(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        CliError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_and_display() {
        let e: CliError = "missing required --out".into();
        assert_eq!(e.to_string(), "missing required --out");
        assert!(e.source().is_none());

        let e: CliError = tripro::Error::DeadlineExceeded.into();
        assert!(matches!(e, CliError::Tripro(_)));
        assert!(e.source().is_some());

        let e: CliError = std::io::Error::other("boom").into();
        assert_eq!(e.to_string(), "boom");

        let e: CliError = ServeError::Unexpected("odd frame").into();
        assert!(e.to_string().contains("odd frame"));
    }
}
