//! PPVP — Progressive Protruding-Vertex Pruning mesh compression (paper §3).
//!
//! The encoder runs rounds of protruding-vertex decimation over the
//! quantised mesh, recording one invertible *removal event* per vertex. The
//! compressed object stores the base (LOD0) mesh plus one byte segment per
//! LOD step; each segment entropy-codes the insertion events that refine the
//! mesh to the next LOD. Decoding is **progressive**: reaching LOD `k` only
//! requires the first `k` segments, and a decoder can later resume to a
//! higher LOD incrementally — exactly the access pattern the
//! Filter-Progressive-Refine query engine needs.
//!
//! Because only protruding vertices are pruned, every LOD mesh covers a
//! subset of every higher LOD mesh, giving the two query properties of §3.2:
//! intersection at a low LOD implies intersection at every higher LOD, and
//! distances are monotonically non-increasing in LOD.

use crate::decimate::{decimate_round, PruneMode, RemovalEvent};
use crate::mesh::{Mesh, MeshError, VertId};
use crate::trimesh::{quantize_mesh, TriMesh};
use tripro_coder::{compress, decompress, ByteReader, DecodeError, Quantizer};
use tripro_geom::{ivec3, Aabb, IVec3, Triangle};

/// Encoder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Quantisation bits per axis (paper uses adaptive per-object grids;
    /// 16 bits keeps sub-voxel fidelity for pathology-scale objects).
    pub bits: u32,
    /// Decimation rounds folded into one LOD step (§6.5: 2 rounds halve the
    /// face count, giving the paper's ratio r = 2).
    pub rounds_per_lod: usize,
    /// Number of LODs *above* the base, i.e. the maximum LOD index.
    /// The paper uses 6 levels total: base LOD0 + 5 steps.
    pub max_lod: usize,
    /// PPVP (`ProtrudingOnly`) or the PPMC-like unconstrained variant.
    pub mode: PruneMode,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            bits: 16,
            rounds_per_lod: 2,
            max_lod: 5,
            mode: PruneMode::ProtrudingOnly,
        }
    }
}

/// A PPVP-compressed polyhedron.
///
/// `segments[0]` holds the base mesh; `segments[k]` (k ≥ 1) holds the
/// insertion events lifting LOD `k-1` to LOD `k`. Every segment is
/// independently entropy-coded so partial (progressive) decoding never
/// touches bytes beyond the requested LOD.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedMesh {
    pub quantizer: Quantizer,
    segments: Vec<Vec<u8>>,
}

const MAGIC: &[u8; 4] = b"PPVP";
const VERSION: u8 = 2;

impl CompressedMesh {
    /// Highest decodable LOD (0 = base only).
    #[inline]
    pub fn max_lod(&self) -> usize {
        self.segments.len() - 1
    }

    /// Compressed byte size of each segment (Fig 9's per-LOD breakdown).
    pub fn segment_sizes(&self) -> Vec<usize> {
        self.segments.iter().map(Vec::len).collect()
    }

    /// Total compressed payload size in bytes (excluding container framing).
    pub fn payload_size(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// Minimal bounding box, available without any decoding: the quantiser
    /// grid spans exactly the object's bounding box.
    pub fn aabb(&self) -> Aabb {
        let q = &self.quantizer;
        let m = q.max_index();
        let lo = q.dequantize([0, 0, 0]);
        let hi = q.dequantize([m, m, m]);
        Aabb::from_corners(
            tripro_geom::vec3(lo[0], lo[1], lo[2]),
            tripro_geom::vec3(hi[0], hi[1], hi[2]),
        )
    }

    /// Serialise to a self-describing byte container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        self.quantizer.write(&mut out);
        tripro_coder::write_u64(&mut out, self.segments.len() as u64);
        for s in &self.segments {
            tripro_coder::write_u64(&mut out, s.len() as u64);
        }
        for s in &self.segments {
            out.extend_from_slice(s);
        }
        out
    }

    /// Parse a container produced by [`CompressedMesh::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(buf);
        if r.read_exact(4)? != MAGIC {
            return Err(DecodeError);
        }
        if r.read_byte()? != VERSION {
            return Err(DecodeError);
        }
        let quantizer = Quantizer::read(&mut r)?;
        let n = r.read_usize()?;
        if n == 0 || n > 64 {
            return Err(DecodeError);
        }
        let mut lens = Vec::with_capacity(n);
        for _ in 0..n {
            lens.push(r.read_usize()?);
        }
        let mut segments = Vec::with_capacity(n);
        for len in lens {
            segments.push(r.read_exact(len)?.to_vec());
        }
        Ok(Self {
            quantizer,
            segments,
        })
    }

    /// Start a progressive decode at LOD 0.
    pub fn decoder(&self) -> Result<ProgressiveMesh, DecodeError> {
        ProgressiveMesh::new(self)
    }
}

/// Compress a triangle mesh with PPVP.
///
/// The mesh must be a closed, consistently oriented 2-manifold; violations
/// are reported as [`MeshError`].
pub fn encode(tm: &TriMesh, cfg: &EncoderConfig) -> Result<CompressedMesh, MeshError> {
    let (mut mesh, quantizer) = quantize_mesh(tm, cfg.bits)?;
    mesh.validate_closed_manifold()?;

    // Decimate.
    let total_rounds = cfg.max_lod * cfg.rounds_per_lod;
    let mut rounds: Vec<Vec<RemovalEvent>> = Vec::new();
    for _ in 0..total_rounds {
        let events = decimate_round(&mut mesh, cfg.mode);
        if events.is_empty() {
            break;
        }
        rounds.push(events);
    }

    // Map encoder vertex ids to decoder ids: base vertices first (ascending
    // id), then insertion order (rounds reversed, events reversed).
    let bound = mesh.vertex_id_bound() as usize;
    let mut map = vec![u32::MAX; bound];
    let mut next: u32 = 0;
    let mut base_ids = Vec::with_capacity(mesh.vertex_count());
    for v in mesh.vertex_ids() {
        map[v as usize] = next;
        base_ids.push(v);
        next += 1;
    }
    for round in rounds.iter().rev() {
        for ev in round.iter().rev() {
            map[ev.removed as usize] = next;
            next += 1;
        }
    }

    // Segment 0: the base mesh.
    let mut segments = Vec::new();
    segments.push(compress(&serialize_base(&mesh, &base_ids, &map)));

    // LOD segments: chunk the reversed rounds, `rounds_per_lod` per step.
    // The deepest decode segments carry the coarsest refinements. Event
    // fields are laid out *columnar* (all ring sizes, then all ring-id
    // deltas, then all position deltas): each column has a homogeneous
    // value distribution, which the adaptive order-0 entropy model exploits
    // far better than an interleaved stream.
    let decode_rounds: Vec<&Vec<RemovalEvent>> = rounds.iter().rev().collect();
    for chunk in decode_rounds.chunks(cfg.rounds_per_lod) {
        let mut ks = Vec::new();
        let mut rings = Vec::new();
        let mut positions = Vec::new();
        let mut n_events = 0usize;
        // Consecutive events touch nearby regions (encoder vertex ids track
        // the generator's spatial scan order), so chaining each event's fan
        // anchor to the previous one keeps the deltas small.
        let mut prev_anchor: i64 = 0;
        for round in chunk {
            for ev in round.iter().rev() {
                prev_anchor = serialize_event(
                    &mut ks,
                    &mut rings,
                    &mut positions,
                    &mesh,
                    ev,
                    &map,
                    prev_anchor,
                );
                n_events += 1;
            }
        }
        let mut raw = Vec::new();
        tripro_coder::write_u64(&mut raw, n_events as u64);
        tripro_coder::write_u64(&mut raw, ks.len() as u64);
        tripro_coder::write_u64(&mut raw, rings.len() as u64);
        raw.extend_from_slice(&ks);
        raw.extend_from_slice(&rings);
        raw.extend_from_slice(&positions);
        segments.push(compress(&raw));
    }

    let cm = CompressedMesh {
        quantizer,
        segments,
    };
    // Under strict-invariants, prove the ladder we just wrote actually has
    // the subset property the query processor relies on (P1/P2, §3).
    #[cfg(feature = "strict-invariants")]
    crate::invariant::check_lod_ladder(&cm)?;
    Ok(cm)
}

fn serialize_base(mesh: &Mesh, base_ids: &[VertId], map: &[u32]) -> Vec<u8> {
    let mut raw = Vec::new();
    tripro_coder::write_u64(&mut raw, base_ids.len() as u64);
    let mut prev = IVec3::ZERO;
    for &v in base_ids {
        let p = mesh.position(v);
        tripro_coder::write_i64(&mut raw, p.x - prev.x);
        tripro_coder::write_i64(&mut raw, p.y - prev.y);
        tripro_coder::write_i64(&mut raw, p.z - prev.z);
        prev = p;
    }
    tripro_coder::write_u64(&mut raw, mesh.face_count() as u64);
    // Faces: first corner as a delta chain, the other two relative to it.
    let mut prev_a: i64 = 0;
    for f in mesh.face_ids() {
        let [a, b, c] = mesh.face(f);
        let (a, b, c) = (
            map[a as usize] as i64,
            map[b as usize] as i64,
            map[c as usize] as i64,
        );
        tripro_coder::write_i64(&mut raw, a - prev_a);
        tripro_coder::write_i64(&mut raw, b - a);
        tripro_coder::write_i64(&mut raw, c - a);
        prev_a = a;
    }
    raw
}

fn serialize_event(
    ks: &mut Vec<u8>,
    rings: &mut Vec<u8>,
    positions: &mut Vec<u8>,
    mesh: &Mesh,
    ev: &RemovalEvent,
    map: &[u32],
    prev_anchor: i64,
) -> i64 {
    let k = ev.ring.len();
    tripro_coder::write_u64(ks, k as u64);
    let anchor = map[ev.ring[0] as usize] as i64;
    let mut prev: i64 = prev_anchor;
    for &r in &ev.ring {
        let id = map[r as usize] as i64;
        tripro_coder::write_i64(rings, id - prev);
        prev = id;
    }
    // Position as a delta from the integer centroid of the ring. Vertex
    // positions are immutable per id, so even ring members removed by later
    // rounds still report their position via `position_any`; the decoder
    // computes the identical centroid from its live mesh at insertion time.
    let mut s = IVec3::ZERO;
    for &r in &ev.ring {
        s = s + mesh.position_any(r);
    }
    let kk = k as i64;
    let c = ivec3(s.x / kk, s.y / kk, s.z / kk);
    tripro_coder::write_i64(positions, ev.pos.x - c.x);
    tripro_coder::write_i64(positions, ev.pos.y - c.y);
    tripro_coder::write_i64(positions, ev.pos.z - c.z);
    anchor
}

/// A progressively decodable mesh: starts at LOD 0, refines on demand.
pub struct ProgressiveMesh {
    quantizer: Quantizer,
    /// Raw event segments for LODs not yet applied (index = LOD).
    segments: Vec<Vec<u8>>,
    state: Mesh,
    current_lod: usize,
}

impl ProgressiveMesh {
    fn new(cm: &CompressedMesh) -> Result<Self, DecodeError> {
        let base_raw = decompress(&cm.segments[0])?;
        let state = parse_base(&base_raw)?;
        Ok(Self {
            quantizer: cm.quantizer,
            segments: cm.segments.clone(),
            state,
            current_lod: 0,
        })
    }

    /// Highest LOD this object can reach.
    #[inline]
    pub fn max_lod(&self) -> usize {
        self.segments.len() - 1
    }

    /// LOD of the current state.
    #[inline]
    pub fn current_lod(&self) -> usize {
        self.current_lod
    }

    /// Refine the mesh up to `lod` (no-op when already there or beyond).
    pub fn decode_to(&mut self, lod: usize) -> Result<(), DecodeError> {
        let lod = lod.min(self.max_lod());
        while self.current_lod < lod {
            let next = self.current_lod + 1;
            let raw = decompress(&self.segments[next])?;
            apply_segment(&mut self.state, &raw)?;
            self.current_lod = next;
        }
        Ok(())
    }

    /// Current-mesh triangles in world coordinates.
    pub fn triangles(&self) -> Vec<Triangle> {
        self.state.triangles(&self.quantizer)
    }

    /// Borrow the current editable mesh state.
    pub fn mesh(&self) -> &Mesh {
        &self.state
    }

    /// The quantiser used by this object.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }
}

fn parse_base(raw: &[u8]) -> Result<Mesh, DecodeError> {
    let mut r = ByteReader::new(raw);
    let n = r.read_usize()?;
    let mut mesh = Mesh::new();
    let mut prev = IVec3::ZERO;
    for _ in 0..n {
        let x = prev.x + r.read_i64()?;
        let y = prev.y + r.read_i64()?;
        let z = prev.z + r.read_i64()?;
        prev = ivec3(x, y, z);
        mesh.add_vertex(prev);
    }
    let nf = r.read_usize()?;
    let mut prev_a: i64 = 0;
    for _ in 0..nf {
        let a = prev_a + r.read_i64()?;
        let b = a + r.read_i64()?;
        let c = a + r.read_i64()?;
        prev_a = a;
        let bound = mesh.vertex_id_bound() as i64;
        if !(0..bound).contains(&a) || !(0..bound).contains(&b) || !(0..bound).contains(&c) {
            return Err(DecodeError);
        }
        mesh.try_add_face(a as u32, b as u32, c as u32)
            .map_err(|_| DecodeError)?;
    }
    Ok(mesh)
}

fn apply_segment(mesh: &mut Mesh, raw: &[u8]) -> Result<(), DecodeError> {
    // Columnar layout: header, then the ring-size, ring-id-delta and
    // position-delta columns (see the encoder for the rationale).
    let mut header = ByteReader::new(raw);
    let n_events = header.read_usize()?;
    let ks_len = header.read_usize()?;
    let rings_len = header.read_usize()?;
    let body = &raw[header.position()..];
    if ks_len.saturating_add(rings_len) > body.len() {
        return Err(DecodeError);
    }
    let mut ks = ByteReader::new(&body[..ks_len]);
    let mut rings = ByteReader::new(&body[ks_len..ks_len + rings_len]);
    let mut positions = ByteReader::new(&body[ks_len + rings_len..]);

    let mut prev_anchor: i64 = 0;
    for _ in 0..n_events {
        let k = ks.read_usize()?;
        if !(3..=64).contains(&k) {
            return Err(DecodeError);
        }
        let mut ring = Vec::with_capacity(k);
        let mut prev: i64 = prev_anchor;
        for _ in 0..k {
            let id = prev + rings.read_i64()?;
            if id < 0 || id as u32 >= mesh.vertex_id_bound() || !mesh.is_vertex_alive(id as u32) {
                return Err(DecodeError);
            }
            ring.push(id as u32);
            prev = id;
        }
        prev_anchor = ring[0] as i64;
        let c = centroid_of(mesh, &ring);
        let x = c.x + positions.read_i64()?;
        let y = c.y + positions.read_i64()?;
        let z = c.z + positions.read_i64()?;
        let expected = mesh.vertex_id_bound();
        crate::decimate::try_apply_insertion(mesh, &ring, ivec3(x, y, z), expected)
            .map_err(|_| DecodeError)?;
    }
    Ok(())
}

/// Integer centroid of ring positions (component-wise floor of the mean;
/// grid coordinates are non-negative so `/` is floor).
fn centroid_of(mesh: &Mesh, ring: &[VertId]) -> IVec3 {
    let mut s = IVec3::ZERO;
    for &v in ring {
        s = s + mesh.position(v);
    }
    let k = ring.len() as i64;
    ivec3(s.x / k, s.y / k, s.z / k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cube, sphere};
    use tripro_geom::{mesh_volume, vec3};

    fn sphere_mesh() -> TriMesh {
        sphere(vec3(10.0, 10.0, 10.0), 4.0, 3) // 512 faces
    }

    #[test]
    fn roundtrip_to_max_lod_is_lossless_on_grid() {
        let tm = sphere_mesh();
        let cfg = EncoderConfig::default();
        let cm = encode(&tm, &cfg).unwrap();
        assert!(cm.max_lod() >= 1, "sphere must compress to multiple LODs");

        let mut dec = cm.decoder().unwrap();
        dec.decode_to(dec.max_lod()).unwrap();
        let m = dec.mesh();
        m.validate_closed_manifold().unwrap();
        // Same topology counts as the original.
        assert_eq!(m.face_count(), tm.faces.len());
        assert_eq!(m.vertex_count(), tm.vertices.len());
        // Identical geometry up to quantisation error.
        let v_orig = tm.volume();
        let v_dec = mesh_volume(&dec.triangles());
        assert!(
            (v_orig - v_dec).abs() / v_orig < 1e-3,
            "{v_orig} vs {v_dec}"
        );
    }

    #[test]
    fn lods_shrink_face_counts_roughly_halving() {
        let tm = sphere_mesh();
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let mut dec = cm.decoder().unwrap();
        let mut counts = vec![dec.mesh().face_count()];
        for lod in 1..=dec.max_lod() {
            dec.decode_to(lod).unwrap();
            counts.push(dec.mesh().face_count());
        }
        for w in counts.windows(2) {
            assert!(w[0] < w[1], "face count must grow with LOD: {counts:?}");
        }
        // §6.5: two rounds of decimation roughly halve the face count, so
        // each LOD step should roughly double it (loose bounds).
        for w in counts.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                ratio > 1.2 && ratio < 4.0,
                "ratio {ratio} out of range: {counts:?}"
            );
        }
    }

    #[test]
    fn ppvp_volume_monotonically_grows_with_lod() {
        let tm = sphere_mesh();
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let mut dec = cm.decoder().unwrap();
        let mut prev = dec.mesh().signed_volume6();
        assert!(prev > 0);
        for lod in 1..=dec.max_lod() {
            dec.decode_to(lod).unwrap();
            let v = dec.mesh().signed_volume6();
            assert!(
                v >= prev,
                "PPVP subset property violated at LOD {lod}: {v} < {prev}"
            );
            prev = v;
        }
    }

    #[test]
    fn every_lod_is_valid_manifold() {
        let tm = sphere_mesh();
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let mut dec = cm.decoder().unwrap();
        dec.mesh().validate_closed_manifold().unwrap();
        for lod in 1..=dec.max_lod() {
            dec.decode_to(lod).unwrap();
            dec.mesh().validate_closed_manifold().unwrap();
        }
    }

    #[test]
    fn container_roundtrip() {
        let tm = sphere_mesh();
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let bytes = cm.to_bytes();
        let cm2 = CompressedMesh::from_bytes(&bytes).unwrap();
        assert_eq!(cm, cm2);
        assert!(CompressedMesh::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(CompressedMesh::from_bytes(b"nope").is_err());
    }

    #[test]
    fn compression_beats_raw_size() {
        let tm = sphere_mesh();
        // Raw size: 24 bytes per vertex + 12 per face.
        let raw = tm.vertices.len() * 24 + tm.faces.len() * 12;
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        assert!(
            cm.payload_size() * 3 < raw,
            "compressed {} vs raw {raw}",
            cm.payload_size()
        );
    }

    #[test]
    fn aabb_matches_without_decoding() {
        let tm = sphere_mesh();
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let bb = cm.aabb();
        let truth = tm.aabb();
        assert!((bb.lo - truth.lo).norm() < 1e-9);
        assert!((bb.hi - truth.hi).norm() < 1e-9);
    }

    #[test]
    fn decode_is_incremental_and_idempotent() {
        let tm = sphere_mesh();
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let mut a = cm.decoder().unwrap();
        let mut b = cm.decoder().unwrap();
        a.decode_to(a.max_lod()).unwrap();
        // b reaches the same state stepwise with redundant calls.
        for lod in 0..=b.max_lod() {
            b.decode_to(lod).unwrap();
            b.decode_to(lod).unwrap();
        }
        b.decode_to(99).unwrap(); // clamped
        assert_eq!(a.mesh().face_count(), b.mesh().face_count());
        assert_eq!(a.mesh().signed_volume6(), b.mesh().signed_volume6());
    }

    #[test]
    fn ppmc_like_mode_also_roundtrips() {
        let tm = sphere_mesh();
        let cfg = EncoderConfig {
            mode: PruneMode::Any,
            ..Default::default()
        };
        let cm = encode(&tm, &cfg).unwrap();
        let mut dec = cm.decoder().unwrap();
        dec.decode_to(dec.max_lod()).unwrap();
        assert_eq!(dec.mesh().face_count(), tm.faces.len());
        dec.mesh().validate_closed_manifold().unwrap();
    }

    #[test]
    fn cube_with_few_vertices_still_encodes() {
        let tm = cube(vec3(0.0, 0.0, 0.0), 2.0);
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let mut dec = cm.decoder().unwrap();
        dec.decode_to(dec.max_lod()).unwrap();
        assert_eq!(dec.mesh().face_count(), 12);
    }

    #[test]
    fn non_manifold_input_rejected() {
        let mut tm = cube(vec3(0.0, 0.0, 0.0), 2.0);
        tm.faces.pop(); // open the surface
        assert!(matches!(
            encode(&tm, &EncoderConfig::default()),
            Err(MeshError::NotClosedManifold(_))
        ));
    }

    #[test]
    fn segment_sizes_sum_to_payload() {
        let tm = sphere_mesh();
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let sizes = cm.segment_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), cm.payload_size());
        assert_eq!(sizes.len(), cm.max_lod() + 1);
    }
}
