//! Shared test helpers: small procedural meshes.
//!
//! Only compiled for tests (`cfg(test)`) and for dependants' dev builds via
//! the `testutil` feature — the real dataset generators live in
//! `tripro-synth`.

use crate::trimesh::TriMesh;
use tripro_geom::{vec3, Vec3};

/// A sphere mesh built by subdividing an octahedron `subdivs` times and
/// projecting onto radius `r` around `center`. Face count is `8 · 4^subdivs`.
pub fn sphere(center: Vec3, r: f64, subdivs: usize) -> TriMesh {
    let mut vertices = vec![
        vec3(1.0, 0.0, 0.0),
        vec3(-1.0, 0.0, 0.0),
        vec3(0.0, 1.0, 0.0),
        vec3(0.0, -1.0, 0.0),
        vec3(0.0, 0.0, 1.0),
        vec3(0.0, 0.0, -1.0),
    ];
    let mut faces: Vec<[u32; 3]> = vec![
        [0, 2, 4],
        [2, 1, 4],
        [1, 3, 4],
        [3, 0, 4],
        [2, 0, 5],
        [1, 2, 5],
        [3, 1, 5],
        [0, 3, 5],
    ];
    for _ in 0..subdivs {
        let mut midpoints: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        let mut next = Vec::with_capacity(faces.len() * 4);
        let mut mid = |a: u32, b: u32, vertices: &mut Vec<Vec3>| -> u32 {
            let key = (a.min(b), a.max(b));
            *midpoints.entry(key).or_insert_with(|| {
                let m = (vertices[a as usize] + vertices[b as usize]) * 0.5;
                let m = m.normalized().unwrap_or(m);
                vertices.push(m);
                (vertices.len() - 1) as u32
            })
        };
        for f in &faces {
            let [a, b, c] = *f;
            let ab = mid(a, b, &mut vertices);
            let bc = mid(b, c, &mut vertices);
            let ca = mid(c, a, &mut vertices);
            next.push([a, ab, ca]);
            next.push([b, bc, ab]);
            next.push([c, ca, bc]);
            next.push([ab, bc, ca]);
        }
        faces = next;
    }
    for v in &mut vertices {
        *v = center + *v * r;
    }
    TriMesh::new(vertices, faces)
}

/// A unit cube as a closed triangle mesh (12 faces) at `center` with side `s`.
pub fn cube(center: Vec3, s: f64) -> TriMesh {
    let h = s * 0.5;
    let vertices = vec![
        center + vec3(-h, -h, -h),
        center + vec3(h, -h, -h),
        center + vec3(h, h, -h),
        center + vec3(-h, h, -h),
        center + vec3(-h, -h, h),
        center + vec3(h, -h, h),
        center + vec3(h, h, h),
        center + vec3(-h, h, h),
    ];
    let quads = [
        [0usize, 3, 2, 1],
        [4, 5, 6, 7],
        [0, 1, 5, 4],
        [2, 3, 7, 6],
        [0, 4, 7, 3],
        [1, 2, 6, 5],
    ];
    let mut faces = Vec::new();
    for q in quads {
        faces.push([q[0] as u32, q[1] as u32, q[2] as u32]);
        faces.push([q[0] as u32, q[2] as u32, q[3] as u32]);
    }
    TriMesh::new(vertices, faces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trimesh::quantize_mesh;

    #[test]
    fn sphere_is_closed_manifold() {
        for subdivs in 0..4 {
            let s = sphere(vec3(0.0, 0.0, 0.0), 1.0, subdivs);
            assert_eq!(s.faces.len(), 8 * 4usize.pow(subdivs as u32));
            let (m, _) = quantize_mesh(&s, 16).unwrap();
            m.validate_closed_manifold().unwrap();
            assert_eq!(m.euler_characteristic(), 2);
        }
    }

    #[test]
    fn sphere_volume_approaches_analytic() {
        let s = sphere(vec3(5.0, 5.0, 5.0), 2.0, 4);
        let analytic = 4.0 / 3.0 * std::f64::consts::PI * 8.0;
        let v = s.volume();
        assert!(v > 0.9 * analytic && v < analytic, "v={v} vs {analytic}");
    }

    #[test]
    fn cube_is_closed_manifold() {
        let c = cube(vec3(1.0, 2.0, 3.0), 2.0);
        assert!((c.volume() - 8.0).abs() < 1e-9);
        let (m, _) = quantize_mesh(&c, 12).unwrap();
        m.validate_closed_manifold().unwrap();
    }
}
