//! Editable indexed triangle mesh on the quantisation grid.
//!
//! The working representation for PPVP encoding and decoding: vertices carry
//! exact grid coordinates ([`IVec3`]), faces are vertex triples oriented
//! counter-clockwise from outside, and per-vertex incidence lists support
//! the local operations decimation needs — ordered one-rings, edge
//! existence, and face lookup by vertex triple.
//!
//! Vertex and face ids are stable across edits (slots are tomb-stoned, never
//! renumbered), which the progressive codec relies on.

use tripro_coder::Quantizer;
use tripro_geom::{ivec3, IVec3, Triangle};

/// Stable vertex identifier.
pub type VertId = u32;
/// Stable face identifier.
pub type FaceId = u32;

#[derive(Debug, Clone)]
struct VertSlot {
    pos: IVec3,
    alive: bool,
}

#[derive(Debug, Clone, Copy)]
struct FaceSlot {
    v: [VertId; 3],
    alive: bool,
}

/// Errors arising when constructing or editing meshes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A face references a missing or dead vertex.
    BadVertexRef(u32),
    /// A face repeats a vertex.
    DegenerateFace,
    /// The mesh is not a closed orientable 2-manifold.
    NotClosedManifold(String),
    /// A structural invariant failed under `strict-invariants` checking.
    InvariantViolation(String),
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::BadVertexRef(v) => write!(f, "face references invalid vertex {v}"),
            MeshError::DegenerateFace => write!(f, "face repeats a vertex"),
            MeshError::NotClosedManifold(why) => write!(f, "not a closed manifold: {why}"),
            MeshError::InvariantViolation(why) => write!(f, "invariant violation: {why}"),
        }
    }
}

impl std::error::Error for MeshError {}

/// Editable triangle mesh with stable ids and incidence lists.
#[derive(Debug, Clone, Default)]
pub struct Mesh {
    verts: Vec<VertSlot>,
    faces: Vec<FaceSlot>,
    /// Alive faces incident to each vertex (unordered).
    vfaces: Vec<Vec<FaceId>>,
    alive_verts: usize,
    alive_faces: usize,
    free_faces: Vec<FaceId>,
}

impl Mesh {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a mesh from grid positions and CCW faces, validating indices
    /// and degeneracy (but not manifoldness — see
    /// [`Mesh::validate_closed_manifold`]).
    pub fn from_parts(positions: Vec<IVec3>, face_list: &[[u32; 3]]) -> Result<Self, MeshError> {
        let mut m = Mesh::new();
        for p in positions {
            m.add_vertex(p);
        }
        for f in face_list {
            m.try_add_face(f[0], f[1], f[2])?;
        }
        Ok(m)
    }

    /// Number of live vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.alive_verts
    }

    /// Number of live faces.
    #[inline]
    pub fn face_count(&self) -> usize {
        self.alive_faces
    }

    /// Upper bound (exclusive) on vertex ids ever allocated.
    #[inline]
    pub fn vertex_id_bound(&self) -> u32 {
        self.verts.len() as u32
    }

    /// Upper bound (exclusive) on face ids ever allocated.
    #[inline]
    pub fn face_id_bound(&self) -> u32 {
        self.faces.len() as u32
    }

    /// `true` when the vertex id refers to a live vertex.
    #[inline]
    #[must_use]
    pub fn is_vertex_alive(&self, v: VertId) -> bool {
        self.verts.get(v as usize).is_some_and(|s| s.alive)
    }

    /// `true` when the face id refers to a live face.
    #[inline]
    #[must_use]
    pub fn is_face_alive(&self, f: FaceId) -> bool {
        self.faces.get(f as usize).is_some_and(|s| s.alive)
    }

    /// Grid position of a live vertex.
    #[inline]
    pub fn position(&self, v: VertId) -> IVec3 {
        debug_assert!(self.is_vertex_alive(v));
        self.verts[v as usize].pos
    }

    /// Grid position of any allocated vertex slot, live or dead. Positions
    /// are immutable per id, so dead slots still report the position the
    /// vertex had — the PPVP encoder uses this to recompute ring centroids
    /// after later rounds removed some ring members.
    #[inline]
    pub fn position_any(&self, v: VertId) -> IVec3 {
        self.verts[v as usize].pos
    }

    /// Vertex triple of a live face.
    #[inline]
    pub fn face(&self, f: FaceId) -> [VertId; 3] {
        debug_assert!(self.is_face_alive(f));
        self.faces[f as usize].v
    }

    /// Append a new vertex, returning its id.
    pub fn add_vertex(&mut self, pos: IVec3) -> VertId {
        let id = self.verts.len() as VertId;
        self.verts.push(VertSlot { pos, alive: true });
        self.vfaces.push(Vec::new());
        self.alive_verts += 1;
        id
    }

    /// Re-insert a vertex under a specific id: revives the dead slot when it
    /// exists (encoder-side undo), or appends when `expected` is the next
    /// fresh id (decoder-side). Panics if the id cannot be honoured — that
    /// means encoder and decoder id assignment diverged.
    pub fn revive_or_add_vertex(&mut self, expected: VertId, pos: IVec3) -> VertId {
        let idx = expected as usize;
        if idx < self.verts.len() {
            assert!(!self.verts[idx].alive, "vertex id {expected} already alive");
            self.verts[idx] = VertSlot { pos, alive: true };
            self.alive_verts += 1;
            expected
        } else {
            assert_eq!(
                idx,
                self.verts.len(),
                "vertex id {expected} out of sync with decode stream"
            );
            self.add_vertex(pos)
        }
    }

    /// Mark a vertex dead. It must have no incident faces.
    pub fn remove_vertex(&mut self, v: VertId) {
        debug_assert!(self.is_vertex_alive(v));
        debug_assert!(
            self.vfaces[v as usize].is_empty(),
            "removing vertex {v} with live incident faces"
        );
        self.verts[v as usize].alive = false;
        self.alive_verts -= 1;
    }

    /// Add a face after checking vertex references and degeneracy.
    pub fn try_add_face(&mut self, a: VertId, b: VertId, c: VertId) -> Result<FaceId, MeshError> {
        for v in [a, b, c] {
            if !self.is_vertex_alive(v) {
                return Err(MeshError::BadVertexRef(v));
            }
        }
        if a == b || b == c || a == c {
            return Err(MeshError::DegenerateFace);
        }
        Ok(self.add_face(a, b, c))
    }

    /// Add a face (callers must uphold validity).
    pub fn add_face(&mut self, a: VertId, b: VertId, c: VertId) -> FaceId {
        let slot = FaceSlot {
            v: [a, b, c],
            alive: true,
        };
        let id = if let Some(id) = self.free_faces.pop() {
            self.faces[id as usize] = slot;
            id
        } else {
            self.faces.push(slot);
            (self.faces.len() - 1) as FaceId
        };
        for v in [a, b, c] {
            self.vfaces[v as usize].push(id);
        }
        self.alive_faces += 1;
        id
    }

    /// Remove a live face.
    pub fn remove_face(&mut self, f: FaceId) {
        debug_assert!(self.is_face_alive(f));
        let vs = self.faces[f as usize].v;
        self.faces[f as usize].alive = false;
        for v in vs {
            let list = &mut self.vfaces[v as usize];
            if let Some(i) = list.iter().position(|&x| x == f) {
                list.swap_remove(i);
            }
        }
        self.alive_faces -= 1;
        self.free_faces.push(f);
    }

    /// Ids of live faces incident to `v`.
    #[inline]
    pub fn faces_of(&self, v: VertId) -> &[FaceId] {
        &self.vfaces[v as usize]
    }

    /// Valence (number of incident faces = number of incident edges for
    /// interior vertices of a closed mesh).
    #[inline]
    pub fn valence(&self, v: VertId) -> usize {
        self.vfaces[v as usize].len()
    }

    /// Find the live face `(a, b, c)` up to rotation (not reflection).
    pub fn find_face(&self, a: VertId, b: VertId, c: VertId) -> Option<FaceId> {
        for &f in self.vfaces.get(a as usize)? {
            let v = self.faces[f as usize].v;
            if v == [a, b, c] || v == [b, c, a] || v == [c, a, b] {
                return Some(f);
            }
        }
        None
    }

    /// `true` when some live face not incident to `exclude` uses the
    /// undirected edge `{a, b}`.
    #[must_use]
    pub fn edge_used_outside(&self, a: VertId, b: VertId, exclude: VertId) -> bool {
        for &f in &self.vfaces[a as usize] {
            let v = self.faces[f as usize].v;
            if v.contains(&exclude) {
                continue;
            }
            if v.contains(&b) {
                return true;
            }
        }
        false
    }

    /// The one-ring of `v`, ordered counter-clockwise as seen from outside
    /// the surface, starting at an arbitrary neighbour.
    ///
    /// Returns `None` when the star of `v` is not a simple disk (non-manifold
    /// configurations) or `v` lies on a boundary.
    pub fn ordered_ring(&self, v: VertId) -> Option<Vec<VertId>> {
        let incident = &self.vfaces[v as usize];
        let k = incident.len();
        if k < 3 {
            return None;
        }
        // For each incident face rotate it to (v, a, b): directed ring edge a→b.
        let mut edges: Vec<(VertId, VertId)> = Vec::with_capacity(k);
        for &f in incident {
            let fv = self.faces[f as usize].v;
            let i = fv.iter().position(|&x| x == v)?;
            let a = fv[(i + 1) % 3];
            let b = fv[(i + 2) % 3];
            edges.push((a, b));
        }
        // Chain the edges into a single cycle.
        let mut ring = Vec::with_capacity(k);
        let start = edges[0].0;
        let mut cur = start;
        for _ in 0..k {
            ring.push(cur);
            let mut next = None;
            for &(a, b) in &edges {
                if a == cur {
                    if next.is_some() {
                        return None; // duplicated outgoing edge: not a disk
                    }
                    next = Some(b);
                }
            }
            cur = next?;
        }
        if cur != start || ring.len() != k {
            return None;
        }
        // All ring members distinct?
        let mut sorted = ring.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != k {
            return None;
        }
        Some(ring)
    }

    /// Iterator over live vertex ids in ascending order.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertId> + '_ {
        self.verts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| i as VertId)
    }

    /// Iterator over live face ids in ascending order.
    pub fn face_ids(&self) -> impl Iterator<Item = FaceId> + '_ {
        self.faces
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| i as FaceId)
    }

    /// Full structural validation, compiled only under `strict-invariants`.
    ///
    /// Checks referential integrity (every face corner names a live vertex,
    /// no face repeats a vertex) before the closed-manifold test, so a
    /// corrupted mesh fails with the most specific error available.
    #[cfg(feature = "strict-invariants")]
    pub fn validate(&self) -> Result<(), MeshError> {
        for f in self.face_ids() {
            let [a, b, c] = self.face(f);
            for v in [a, b, c] {
                if !self.is_vertex_alive(v) {
                    return Err(MeshError::BadVertexRef(v));
                }
            }
            if a == b || b == c || a == c {
                return Err(MeshError::DegenerateFace);
            }
        }
        self.validate_closed_manifold()
    }

    /// Validate that the mesh is a closed, consistently-oriented 2-manifold:
    /// every directed edge appears exactly once and its opposite exists, and
    /// every vertex star is a simple disk.
    pub fn validate_closed_manifold(&self) -> Result<(), MeshError> {
        let mut directed: std::collections::HashMap<(VertId, VertId), u32> =
            std::collections::HashMap::with_capacity(self.alive_faces * 3);
        for f in self.face_ids() {
            let v = self.face(f);
            for i in 0..3 {
                let e = (v[i], v[(i + 1) % 3]);
                *directed.entry(e).or_insert(0) += 1;
            }
        }
        for (&(a, b), &n) in &directed {
            if n != 1 {
                return Err(MeshError::NotClosedManifold(format!(
                    "directed edge ({a},{b}) used {n} times"
                )));
            }
            if !directed.contains_key(&(b, a)) {
                return Err(MeshError::NotClosedManifold(format!(
                    "edge ({a},{b}) lacks its opposite — surface has a boundary"
                )));
            }
        }
        for v in self.vertex_ids() {
            if self.valence(v) > 0 && self.ordered_ring(v).is_none() {
                return Err(MeshError::NotClosedManifold(format!(
                    "vertex {v} star is not a simple disk"
                )));
            }
        }
        Ok(())
    }

    /// Euler characteristic `V - E + F` of the live mesh (2 for a sphere).
    pub fn euler_characteristic(&self) -> i64 {
        let v = self.alive_verts as i64;
        let f = self.alive_faces as i64;
        // In a closed triangle mesh every face contributes 3 edge-halves.
        let e = (f * 3) / 2;
        v - e + f
    }

    /// Materialise the live faces as dequantised floating-point triangles.
    pub fn triangles(&self, q: &Quantizer) -> Vec<Triangle> {
        let p = |v: VertId| {
            let g = self.position(v);
            let f = q.dequantize([g.x, g.y, g.z]);
            tripro_geom::vec3(f[0], f[1], f[2])
        };
        self.face_ids()
            .map(|f| {
                let [a, b, c] = self.face(f);
                Triangle::new(p(a), p(b), p(c))
            })
            .collect()
    }

    /// Live grid positions paired with their vertex ids.
    pub fn grid_positions(&self) -> Vec<(VertId, IVec3)> {
        self.vertex_ids().map(|v| (v, self.position(v))).collect()
    }

    /// Exact signed volume ×6 of the enclosed solid on the grid
    /// (positive for outward-oriented closed surfaces).
    pub fn signed_volume6(&self) -> i128 {
        let mut total: i128 = 0;
        for f in self.face_ids() {
            let [a, b, c] = self.face(f);
            let pa = self.position(a);
            let pb = self.position(b);
            let pc = self.position(c);
            let (cx, cy, cz) = pb.cross_wide(pc);
            total += cx * pa.x as i128 + cy * pa.y as i128 + cz * pa.z as i128;
        }
        total
    }
}

/// A tetrahedron as grid positions — convenience for tests.
pub fn tetrahedron() -> Mesh {
    // Positive orientation: all faces CCW from outside.
    let p = vec![
        ivec3(0, 0, 0),
        ivec3(4, 0, 0),
        ivec3(0, 4, 0),
        ivec3(0, 0, 4),
    ];
    let f = [[0u32, 2, 1], [0, 1, 3], [1, 2, 3], [0, 3, 2]];
    // tripro_lint::allow(no_panic): constant, known-valid input
    Mesh::from_parts(p, &f).expect("tetrahedron is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An octahedron: 6 vertices, 8 faces, every vertex valence 4.
    pub(crate) fn octahedron() -> Mesh {
        let p = vec![
            ivec3(8, 0, 0),
            ivec3(-8, 0, 0),
            ivec3(0, 8, 0),
            ivec3(0, -8, 0),
            ivec3(0, 0, 8),
            ivec3(0, 0, -8),
        ];
        let f = [
            [0u32, 2, 4],
            [2, 1, 4],
            [1, 3, 4],
            [3, 0, 4],
            [2, 0, 5],
            [1, 2, 5],
            [3, 1, 5],
            [0, 3, 5],
        ];
        Mesh::from_parts(p, &f).expect("octahedron is valid")
    }

    #[test]
    fn tetrahedron_is_closed_manifold() {
        let m = tetrahedron();
        assert_eq!(m.vertex_count(), 4);
        assert_eq!(m.face_count(), 4);
        m.validate_closed_manifold().unwrap();
        assert_eq!(m.euler_characteristic(), 2);
        assert!(
            m.signed_volume6() > 0,
            "tetrahedron must be outward-oriented"
        );
    }

    #[test]
    fn octahedron_ring_ordering() {
        let m = octahedron();
        m.validate_closed_manifold().unwrap();
        let ring = m.ordered_ring(4).expect("apex ring");
        assert_eq!(ring.len(), 4);
        // Ring must be the equator 0,2,1,3 in cyclic order.
        let pos = ring.iter().position(|&v| v == 0).unwrap();
        let rotated: Vec<_> = (0..4).map(|i| ring[(pos + i) % 4]).collect();
        assert_eq!(rotated, vec![0, 2, 1, 3]);
    }

    #[test]
    fn face_add_remove_and_find() {
        let mut m = octahedron();
        let f = m.find_face(0, 2, 4).expect("face exists");
        assert!(
            m.find_face(2, 4, 0).is_some(),
            "rotation finds the same face"
        );
        assert!(
            m.find_face(0, 4, 2).is_none(),
            "reflection is a different face"
        );
        m.remove_face(f);
        assert_eq!(m.face_count(), 7);
        assert!(m.find_face(0, 2, 4).is_none());
        let f2 = m.add_face(0, 2, 4);
        assert!(m.is_face_alive(f2));
        assert_eq!(m.face_count(), 8);
        m.validate_closed_manifold().unwrap();
    }

    #[test]
    fn face_slot_recycling() {
        let mut m = octahedron();
        let bound_before = m.face_id_bound();
        let f = m.find_face(0, 2, 4).unwrap();
        m.remove_face(f);
        let f2 = m.add_face(0, 2, 4);
        assert_eq!(f, f2, "slot should be recycled");
        assert_eq!(m.face_id_bound(), bound_before);
    }

    #[test]
    fn vertex_removal_requires_no_faces() {
        let mut m = octahedron();
        let fs: Vec<_> = m.faces_of(4).to_vec();
        for f in fs {
            m.remove_face(f);
        }
        m.remove_vertex(4);
        assert_eq!(m.vertex_count(), 5);
        assert!(!m.is_vertex_alive(4));
    }

    #[test]
    fn boundary_is_rejected() {
        let mut m = octahedron();
        let f = m.find_face(0, 2, 4).unwrap();
        m.remove_face(f);
        assert!(matches!(
            m.validate_closed_manifold(),
            Err(MeshError::NotClosedManifold(_))
        ));
    }

    #[test]
    fn bad_face_references() {
        let mut m = tetrahedron();
        assert_eq!(m.try_add_face(0, 1, 9), Err(MeshError::BadVertexRef(9)));
        assert_eq!(m.try_add_face(0, 1, 1), Err(MeshError::DegenerateFace));
    }

    #[test]
    fn edge_used_outside_detection() {
        let m = octahedron();
        // Edge {0,2} is used by faces (0,2,4) and (2,0,5).
        assert!(
            m.edge_used_outside(0, 2, 4),
            "face (2,0,5) uses it outside 4's star"
        );
        // Excluding both apexes leaves nothing.
        let mut m2 = m.clone();
        let f = m2.find_face(2, 0, 5).unwrap();
        m2.remove_face(f);
        assert!(!m2.edge_used_outside(0, 2, 4));
    }

    #[test]
    fn non_manifold_star_detected() {
        // Two tetrahedra glued at a single vertex: its star is two disks.
        let mut m = tetrahedron();
        let a = m.add_vertex(ivec3(10, 10, 10));
        let b = m.add_vertex(ivec3(14, 10, 10));
        let c = m.add_vertex(ivec3(10, 14, 10));
        // Second tetrahedron shares vertex 0.
        m.add_face(a, c, b);
        m.add_face(a, b, 0);
        m.add_face(b, c, 0);
        m.add_face(a, 0, c);
        assert!(m.ordered_ring(0).is_none());
        assert!(m.validate_closed_manifold().is_err());
    }

    #[test]
    fn triangles_dequantise() {
        let m = tetrahedron();
        let q = Quantizer::new([0.0; 3], [4.0; 3], 2);
        let tris = m.triangles(&q);
        assert_eq!(tris.len(), 4);
        let vol: f64 = tripro_geom::mesh_volume(&tris);
        // Grid step is 4/3 per axis... positions 0 and 4 map to 0.0 and 16/3.
        assert!(vol > 0.0);
    }

    #[test]
    fn signed_volume_flips_with_orientation() {
        let m = tetrahedron();
        let v6 = m.signed_volume6();
        let mut flipped = Mesh::new();
        for (_, p) in m.grid_positions() {
            flipped.add_vertex(p);
        }
        for f in m.face_ids() {
            let [a, b, c] = m.face(f);
            flipped.add_face(a, c, b);
        }
        assert_eq!(flipped.signed_volume6(), -v6);
    }
}
