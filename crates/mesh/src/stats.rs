//! Compression statistics mirroring the numbers the paper reports in §6.2:
//! protruding-vertex fraction, per-LOD face counts, the fraction of faces
//! shared between adjacent LODs (~15.6% in the paper), and compression
//! ratios.

use crate::decimate::{classify_vertices, VertexClass};
use crate::mesh::Mesh;
use crate::ppvp::CompressedMesh;
use crate::trimesh::{quantize_mesh, TriMesh};
use tripro_coder::DecodeError;

/// Fraction of classifiable vertices that are protruding (§3.2 claims ~92%
/// across the paper's datasets; ~99% for nuclei, ~75% for vessels).
pub fn protruding_fraction(mesh: &Mesh) -> f64 {
    let classes = classify_vertices(mesh);
    if classes.is_empty() {
        return 0.0;
    }
    let protruding = classes
        .iter()
        .filter(|(_, c)| *c == VertexClass::Protruding)
        .count();
    protruding as f64 / classes.len() as f64
}

/// Convenience: quantise a float mesh and report its protruding fraction.
pub fn protruding_fraction_of(tm: &TriMesh, bits: u32) -> f64 {
    match quantize_mesh(tm, bits) {
        Ok((mesh, _)) => protruding_fraction(&mesh),
        Err(_) => 0.0,
    }
}

/// Uncompressed in-memory footprint the paper compares against:
/// 3 × f64 per vertex plus 3 × u32 per face.
pub fn raw_size(tm: &TriMesh) -> usize {
    tm.vertices.len() * 24 + tm.faces.len() * 12
}

/// Summary of one compressed object across its LOD ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct LodProfile {
    /// Faces at each LOD, index = LOD.
    pub face_counts: Vec<usize>,
    /// For each adjacent LOD pair `(l, l+1)`: the fraction of LOD `l` faces
    /// that survive verbatim into LOD `l+1` (same vertex triple).
    pub shared_face_fractions: Vec<f64>,
    /// Compressed bytes per segment, index = LOD (0 = base mesh).
    pub segment_sizes: Vec<usize>,
}

/// Decode every LOD of `cm` and profile face survival between levels.
pub fn lod_profile(cm: &CompressedMesh) -> Result<LodProfile, DecodeError> {
    let mut dec = cm.decoder()?;
    let mut face_counts = Vec::new();
    let mut shared = Vec::new();
    let mut prev_faces = face_set(dec.mesh());
    face_counts.push(prev_faces.len());
    for lod in 1..=cm.max_lod() {
        dec.decode_to(lod)?;
        let cur = face_set(dec.mesh());
        let surviving = prev_faces.iter().filter(|f| cur.contains(*f)).count();
        shared.push(surviving as f64 / prev_faces.len().max(1) as f64);
        face_counts.push(cur.len());
        prev_faces = cur;
    }
    Ok(LodProfile {
        face_counts,
        shared_face_fractions: shared,
        segment_sizes: cm.segment_sizes(),
    })
}

fn face_set(mesh: &Mesh) -> std::collections::HashSet<[u32; 3]> {
    mesh.face_ids()
        .map(|f| {
            let v = mesh.face(f);
            let m = (0..3).min_by_key(|&i| v[i]).unwrap_or(0);
            [v[m], v[(m + 1) % 3], v[(m + 2) % 3]]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppvp::{encode, EncoderConfig};
    use crate::testutil::sphere;
    use tripro_geom::vec3;

    #[test]
    fn sphere_is_mostly_protruding() {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 3.0, 3);
        let f = protruding_fraction_of(&tm, 16);
        // A convex shape: essentially every vertex protrudes (paper: ~99%
        // for near-convex nuclei).
        assert!(f > 0.95, "fraction {f}");
    }

    #[test]
    fn raw_size_formula() {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 1.0, 1);
        assert_eq!(raw_size(&tm), tm.vertices.len() * 24 + tm.faces.len() * 12);
    }

    #[test]
    fn lod_profile_shapes() {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 3.0, 3);
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let p = lod_profile(&cm).unwrap();
        assert_eq!(p.face_counts.len(), cm.max_lod() + 1);
        assert_eq!(p.shared_face_fractions.len(), cm.max_lod());
        assert_eq!(p.segment_sizes, cm.segment_sizes());
        // Face counts strictly increase with LOD.
        for w in p.face_counts.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Most low-LOD faces are replaced when refining (paper: only ~15.6%
        // survive); allow a wide band but demand real replacement happens.
        for &s in &p.shared_face_fractions {
            assert!((0.0..=0.7).contains(&s), "shared fraction {s}");
        }
    }
}
