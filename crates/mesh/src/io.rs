//! Mesh file I/O: Wavefront OBJ and OFF, the two formats 3D pathology
//! pipelines and mesh-processing tools commonly exchange. Only geometry is
//! handled (vertices + triangular faces); normals/texcoords in OBJ input
//! are accepted and ignored.

use crate::trimesh::TriMesh;
use std::io::{BufRead, Write};
use std::path::Path;
use tripro_geom::vec3;

/// Errors from mesh file parsing.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    /// Malformed content, with a line number and description.
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(line, what) => write!(f, "parse error at line {line}: {what}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse a Wavefront OBJ document. Faces with more than three corners are
/// fan-triangulated; `v`-lines must have at least 3 coordinates; indices
/// may be negative (relative) per the OBJ specification.
pub fn parse_obj(reader: impl BufRead) -> Result<TriMesh, IoError> {
    let mut vertices = Vec::new();
    let mut faces = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let mut it = line.split_whitespace();
        match it.next() {
            Some("v") => {
                let mut c = [0.0f64; 3];
                for (i, v) in c.iter_mut().enumerate() {
                    let tok = it.next().ok_or_else(|| {
                        IoError::Parse(lineno, format!("vertex needs 3 coords, got {i}"))
                    })?;
                    *v = tok
                        .parse()
                        .map_err(|_| IoError::Parse(lineno, format!("bad coordinate {tok:?}")))?;
                }
                vertices.push(vec3(c[0], c[1], c[2]));
            }
            Some("f") => {
                let mut idx = Vec::new();
                for tok in it {
                    // "v", "v/vt", "v//vn", "v/vt/vn" — take the first field.
                    let first = tok.split('/').next().unwrap_or("");
                    let i: i64 = first
                        .parse()
                        .map_err(|_| IoError::Parse(lineno, format!("bad face index {tok:?}")))?;
                    let resolved = if i > 0 {
                        (i - 1) as usize
                    } else if i < 0 {
                        let n = vertices.len() as i64 + i;
                        if n < 0 {
                            return Err(IoError::Parse(
                                lineno,
                                format!("relative index {i} out of range"),
                            ));
                        }
                        n as usize
                    } else {
                        return Err(IoError::Parse(lineno, "face index 0 is invalid".into()));
                    };
                    if resolved >= vertices.len() {
                        return Err(IoError::Parse(
                            lineno,
                            format!(
                                "face references vertex {} of {}",
                                resolved + 1,
                                vertices.len()
                            ),
                        ));
                    }
                    idx.push(resolved as u32);
                }
                if idx.len() < 3 {
                    return Err(IoError::Parse(
                        lineno,
                        "face needs at least 3 corners".into(),
                    ));
                }
                for i in 1..idx.len() - 1 {
                    faces.push([idx[0], idx[i], idx[i + 1]]);
                }
            }
            // Comments, groups, materials, normals, texcoords: ignored.
            _ => {}
        }
    }
    Ok(TriMesh::new(vertices, faces))
}

/// Load an OBJ file.
pub fn load_obj(path: impl AsRef<Path>) -> Result<TriMesh, IoError> {
    let f = std::fs::File::open(path)?;
    parse_obj(std::io::BufReader::new(f))
}

/// Write a `TriMesh` as OBJ.
pub fn save_obj(path: impl AsRef<Path>, tm: &TriMesh) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "# tripro export: {} vertices, {} faces",
        tm.vertices.len(),
        tm.faces.len()
    )?;
    for v in &tm.vertices {
        writeln!(w, "v {} {} {}", v.x, v.y, v.z)?;
    }
    for f in &tm.faces {
        writeln!(w, "f {} {} {}", f[0] + 1, f[1] + 1, f[2] + 1)?;
    }
    Ok(())
}

/// Parse an OFF document (the header keyword, a count line, vertex lines,
/// then polygon lines prefixed by their corner count).
pub fn parse_off(reader: impl BufRead) -> Result<TriMesh, IoError> {
    let mut tokens: Vec<(usize, String)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("");
        for t in body.split_whitespace() {
            tokens.push((lineno + 1, t.to_string()));
        }
    }
    let mut pos = 0usize;
    let mut next = |what: &str| -> Result<(usize, String), IoError> {
        let t = tokens.get(pos).cloned().ok_or_else(|| {
            IoError::Parse(tokens.last().map_or(0, |t| t.0), format!("missing {what}"))
        })?;
        pos += 1;
        Ok(t)
    };
    let (l0, header) = next("OFF header")?;
    if header != "OFF" {
        return Err(IoError::Parse(
            l0,
            format!("expected OFF header, got {header:?}"),
        ));
    }
    let parse_usize = |(l, t): (usize, String)| -> Result<usize, IoError> {
        t.parse()
            .map_err(|_| IoError::Parse(l, format!("bad count {t:?}")))
    };
    let parse_f64 = |(l, t): (usize, String)| -> Result<f64, IoError> {
        t.parse()
            .map_err(|_| IoError::Parse(l, format!("bad number {t:?}")))
    };
    let nv = parse_usize(next("vertex count")?)?;
    let nf = parse_usize(next("face count")?)?;
    let _ne = parse_usize(next("edge count")?)?;
    let mut vertices = Vec::with_capacity(nv);
    for _ in 0..nv {
        let x = parse_f64(next("x")?)?;
        let y = parse_f64(next("y")?)?;
        let z = parse_f64(next("z")?)?;
        vertices.push(vec3(x, y, z));
    }
    let mut faces = Vec::with_capacity(nf);
    for _ in 0..nf {
        let k = parse_usize(next("face arity")?)?;
        if k < 3 {
            return Err(IoError::Parse(0, format!("face arity {k} < 3")));
        }
        let mut idx = Vec::with_capacity(k);
        for _ in 0..k {
            let (l, t) = next("face index")?;
            let i: usize = t
                .parse()
                .map_err(|_| IoError::Parse(l, format!("bad index {t:?}")))?;
            if i >= vertices.len() {
                return Err(IoError::Parse(
                    l,
                    format!("face references vertex {i} of {nv}"),
                ));
            }
            idx.push(i as u32);
        }
        for i in 1..idx.len() - 1 {
            faces.push([idx[0], idx[i], idx[i + 1]]);
        }
    }
    Ok(TriMesh::new(vertices, faces))
}

/// Load an OFF file.
pub fn load_off(path: impl AsRef<Path>) -> Result<TriMesh, IoError> {
    let f = std::fs::File::open(path)?;
    parse_off(std::io::BufReader::new(f))
}

/// Write a `TriMesh` as OFF.
pub fn save_off(path: impl AsRef<Path>, tm: &TriMesh) -> Result<(), IoError> {
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "OFF")?;
    writeln!(w, "{} {} 0", tm.vertices.len(), tm.faces.len())?;
    for v in &tm.vertices {
        writeln!(w, "{} {} {}", v.x, v.y, v.z)?;
    }
    for f in &tm.faces {
        writeln!(w, "3 {} {} {}", f[0], f[1], f[2])?;
    }
    Ok(())
}

/// Load by extension (`.obj` or `.off`, case-insensitive).
pub fn load_mesh(path: impl AsRef<Path>) -> Result<TriMesh, IoError> {
    let p = path.as_ref();
    match p
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase)
        .as_deref()
    {
        Some("obj") => load_obj(p),
        Some("off") => load_off(p),
        other => Err(IoError::Parse(
            0,
            format!("unsupported mesh extension {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sphere;
    use std::io::Cursor;

    #[test]
    fn obj_roundtrip() {
        let tm = sphere(vec3(1.0, 2.0, 3.0), 1.5, 2);
        let path = std::env::temp_dir().join(format!("tripro_io_{}.obj", std::process::id()));
        save_obj(&path, &tm).unwrap();
        let back = load_obj(&path).unwrap();
        assert_eq!(back.vertices.len(), tm.vertices.len());
        assert_eq!(back.faces, tm.faces);
        assert!((back.volume() - tm.volume()).abs() < 1e-9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn off_roundtrip() {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 2.0, 1);
        let path = std::env::temp_dir().join(format!("tripro_io_{}.off", std::process::id()));
        save_off(&path, &tm).unwrap();
        let back = load_off(&path).unwrap();
        assert_eq!(back.faces, tm.faces);
        assert!((back.volume() - tm.volume()).abs() < 1e-9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn obj_with_slashes_and_quads() {
        let src = "\
# comment
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
vn 0 0 1
f 1/1/1 2/2/1 3/3/1 4/4/1
";
        let tm = parse_obj(Cursor::new(src)).unwrap();
        assert_eq!(tm.vertices.len(), 4);
        // Quad fan-triangulated.
        assert_eq!(tm.faces, vec![[0, 1, 2], [0, 2, 3]]);
    }

    #[test]
    fn obj_negative_indices() {
        let src = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n";
        let tm = parse_obj(Cursor::new(src)).unwrap();
        assert_eq!(tm.faces, vec![[0, 1, 2]]);
    }

    #[test]
    fn obj_errors() {
        assert!(parse_obj(Cursor::new("v 1 2\n")).is_err(), "short vertex");
        assert!(
            parse_obj(Cursor::new("v 1 2 3\nf 1 2 9\n")).is_err(),
            "oob index"
        );
        assert!(
            parse_obj(Cursor::new("v 1 2 3\nf 0 1 1\n")).is_err(),
            "index zero"
        );
        assert!(parse_obj(Cursor::new("v a b c\n")).is_err(), "bad number");
        assert!(
            parse_obj(Cursor::new("v 1 2 3\nf 1 2\n")).is_err(),
            "short face"
        );
    }

    #[test]
    fn off_parses_polygons_and_comments() {
        let src = "\
OFF # header comment
4 1 0
0 0 0
1 0 0
1 1 0
0 1 0
4 0 1 2 3
";
        let tm = parse_off(Cursor::new(src)).unwrap();
        assert_eq!(tm.vertices.len(), 4);
        assert_eq!(tm.faces.len(), 2);
    }

    #[test]
    fn off_errors() {
        assert!(parse_off(Cursor::new("NOT_OFF\n")).is_err());
        assert!(
            parse_off(Cursor::new("OFF\n1 0 0\n0 0\n")).is_err(),
            "truncated vertex"
        );
        assert!(parse_off(Cursor::new("OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 7\n")).is_err());
    }

    #[test]
    fn load_mesh_dispatches_on_extension() {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 1.0, 0);
        let dir = std::env::temp_dir();
        let obj = dir.join(format!("tripro_dis_{}.obj", std::process::id()));
        let off = dir.join(format!("tripro_dis_{}.OFF", std::process::id()));
        save_obj(&obj, &tm).unwrap();
        save_off(&off, &tm).unwrap();
        assert_eq!(load_mesh(&obj).unwrap().faces.len(), 8);
        assert_eq!(load_mesh(&off).unwrap().faces.len(), 8);
        assert!(load_mesh(dir.join("x.stl")).is_err());
        let _ = std::fs::remove_file(obj);
        let _ = std::fs::remove_file(off);
    }
}
