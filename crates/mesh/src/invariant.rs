//! Runtime checkers for the PPVP structural invariants, compiled only under
//! the `strict-invariants` feature.
//!
//! The query processor's correctness rests on the *subset property* of the
//! LOD ladder (paper §3): every lower LOD's vertex set is a subset of the
//! next LOD's, so
//!
//! * **P1** — objects intersecting at a low LOD intersect at every higher
//!   LOD (intersection implication), and
//! * **P2** — inter-object distances are non-increasing in LOD (distance
//!   monotonicity).
//!
//! [`check_lod_ladder`] verifies the subset property *structurally* on a
//! freshly encoded [`CompressedMesh`] by decoding every LOD and comparing
//! quantised vertex sets — an exact integer comparison, no epsilons. It also
//! re-validates manifoldness at every intermediate LOD, since the decimator
//! guarantees (and the decoder assumes) each rung is itself a closed mesh.
//!
//! These checks are O(ladder × mesh) and run after every `encode()` when the
//! feature is on; they are meant for tests and debugging builds, not
//! production encoding.

use crate::mesh::MeshError;
use crate::ppvp::CompressedMesh;
use std::collections::HashSet;

/// Decode every LOD of `cm` and verify the ladder invariants.
///
/// Errors with [`MeshError::InvariantViolation`] describing the first rung
/// that breaks (a) vertex-set inclusion, (b) monotone vertex/face growth, or
/// (c) closed-manifoldness.
pub fn check_lod_ladder(cm: &CompressedMesh) -> Result<(), MeshError> {
    let violation = |why: String| MeshError::InvariantViolation(why);
    let decode_failed =
        |lod: usize| violation(format!("LOD {lod} failed to decode during invariant check"));

    let mut pm = cm.decoder().map_err(|_| decode_failed(0))?;
    let top = pm.max_lod();
    let mut prev_verts: Option<HashSet<(i64, i64, i64)>> = None;
    let mut prev_faces = 0usize;
    for lod in 0..=top {
        pm.decode_to(lod).map_err(|_| decode_failed(lod))?;
        let mesh = pm.mesh();

        mesh.validate_closed_manifold()
            .map_err(|e| violation(format!("LOD {lod} is not a closed manifold: {e}")))?;

        let verts: HashSet<(i64, i64, i64)> = mesh
            .vertex_ids()
            .map(|v| {
                let p = mesh.position(v);
                (p.x, p.y, p.z)
            })
            .collect();
        let faces = mesh.face_count();

        if let Some(prev) = &prev_verts {
            if !prev.is_subset(&verts) {
                let missing = prev.difference(&verts).count();
                return Err(violation(format!(
                    "subset property broken: {missing} vertices of LOD {} vanished at LOD {lod}",
                    lod - 1
                )));
            }
            if verts.len() < prev.len() {
                return Err(violation(format!(
                    "vertex count shrank from {} (LOD {}) to {} (LOD {lod})",
                    prev.len(),
                    lod - 1,
                    verts.len()
                )));
            }
            if faces < prev_faces {
                return Err(violation(format!(
                    "face count shrank from {prev_faces} (LOD {}) to {faces} (LOD {lod})",
                    lod - 1
                )));
            }
        }
        prev_verts = Some(verts);
        prev_faces = faces;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppvp::{encode, EncoderConfig};
    use crate::testutil::sphere;
    use tripro_geom::vec3;

    #[test]
    fn ladder_of_a_sphere_passes() {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 2.0, 3);
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        check_lod_ladder(&cm).unwrap();
    }

    #[test]
    fn corrupted_payload_is_reported_not_panicked() {
        let tm = sphere(vec3(0.0, 0.0, 0.0), 2.0, 2);
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let mut bytes = cm.to_bytes();
        // Flip a byte in the middle of the payload; the checker must come
        // back with an error rather than aborting the process.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        if let Ok(bad) = CompressedMesh::from_bytes(&bytes) {
            let _ = check_lod_ladder(&bad);
        }
    }
}
