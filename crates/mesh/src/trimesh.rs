//! Floating-point triangle-soup mesh and its conversion onto the
//! quantisation grid.
//!
//! `TriMesh` is the interchange format: generators (`tripro-synth`) produce
//! it, the PPVP encoder consumes it after snapping to a grid.

use crate::mesh::{Mesh, MeshError};
use tripro_coder::Quantizer;
use tripro_geom::{ivec3, Aabb, IVec3, Triangle, Vec3};

/// An indexed triangle mesh with `f64` vertices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriMesh {
    pub vertices: Vec<Vec3>,
    /// Vertex triples, counter-clockwise from outside.
    pub faces: Vec<[u32; 3]>,
}

impl TriMesh {
    pub fn new(vertices: Vec<Vec3>, faces: Vec<[u32; 3]>) -> Self {
        Self { vertices, faces }
    }

    /// Bounding box of all vertices.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points(self.vertices.iter().cloned())
    }

    /// Materialise faces as triangles.
    pub fn triangles(&self) -> Vec<Triangle> {
        self.faces
            .iter()
            .map(|f| {
                Triangle::new(
                    self.vertices[f[0] as usize],
                    self.vertices[f[1] as usize],
                    self.vertices[f[2] as usize],
                )
            })
            .collect()
    }

    /// Merge vertices closer than `eps` (exact duplicates when `eps == 0`),
    /// dropping faces that become degenerate. Returns the number of removed
    /// vertices.
    pub fn weld(&mut self, eps: f64) -> usize {
        let n = self.vertices.len();
        let mut map: Vec<u32> = (0..n as u32).collect();
        if tripro_geom::is_exactly_zero(eps) {
            let mut seen: std::collections::HashMap<[u64; 3], u32> =
                std::collections::HashMap::with_capacity(n);
            for (i, v) in self.vertices.iter().enumerate() {
                let key = [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()];
                map[i] = *seen.entry(key).or_insert(i as u32);
            }
        } else {
            // Grid hash: points within eps land in the same or adjacent cell.
            let inv = 1.0 / eps;
            let mut grid: std::collections::HashMap<(i64, i64, i64), Vec<u32>> =
                std::collections::HashMap::new();
            for (i, v) in self.vertices.iter().enumerate() {
                let c = (
                    (v.x * inv).floor() as i64,
                    (v.y * inv).floor() as i64,
                    (v.z * inv).floor() as i64,
                );
                let mut found = None;
                'search: for dx in -1..=1 {
                    for dy in -1..=1 {
                        for dz in -1..=1 {
                            if let Some(cands) = grid.get(&(c.0 + dx, c.1 + dy, c.2 + dz)) {
                                for &j in cands {
                                    if self.vertices[j as usize].dist(*v) <= eps {
                                        found = Some(j);
                                        break 'search;
                                    }
                                }
                            }
                        }
                    }
                }
                match found {
                    Some(j) => map[i] = j,
                    None => grid.entry(c).or_default().push(i as u32),
                }
            }
        }

        // Compact: keep representatives only.
        let mut new_id = vec![u32::MAX; n];
        let mut verts = Vec::new();
        for i in 0..n {
            if map[i] == i as u32 {
                new_id[i] = verts.len() as u32;
                verts.push(self.vertices[i]);
            }
        }
        for i in 0..n {
            new_id[i] = new_id[map[i] as usize];
        }
        let removed = n - verts.len();
        self.vertices = verts;
        self.faces.retain_mut(|f| {
            for v in f.iter_mut() {
                *v = new_id[*v as usize];
            }
            f[0] != f[1] && f[1] != f[2] && f[0] != f[2]
        });
        removed
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        self.triangles().iter().map(Triangle::area).sum()
    }

    /// Signed volume (positive when outward-oriented).
    pub fn volume(&self) -> f64 {
        tripro_geom::mesh_volume(&self.triangles())
    }

    /// Translate all vertices.
    pub fn translate(&mut self, d: Vec3) {
        for v in &mut self.vertices {
            *v += d;
        }
    }

    /// Scale all vertices about the origin.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.vertices {
            *v = *v * s;
        }
    }
}

/// Snap a `TriMesh` onto a `bits`-per-axis grid over its bounding box and
/// build the editable [`Mesh`].
///
/// Fails with [`MeshError::DegenerateFace`] when quantisation collapses a
/// face (use more bits), and propagates manifold violations from validation.
pub fn quantize_mesh(tm: &TriMesh, bits: u32) -> Result<(Mesh, Quantizer), MeshError> {
    let bb = tm.aabb();
    let q = Quantizer::new(bb.lo.to_array(), bb.hi.to_array(), bits);
    let mut grid_pos: Vec<IVec3> = Vec::with_capacity(tm.vertices.len());
    for v in &tm.vertices {
        let g = q.quantize(v.to_array());
        grid_pos.push(ivec3(g[0], g[1], g[2]));
    }
    // Weld grid-coincident vertices (rare at sane bit widths).
    let mut seen: std::collections::HashMap<IVec3, u32> =
        std::collections::HashMap::with_capacity(grid_pos.len());
    let mut remap = vec![0u32; grid_pos.len()];
    let mut verts = Vec::new();
    for (i, g) in grid_pos.iter().enumerate() {
        match seen.entry(*g) {
            std::collections::hash_map::Entry::Occupied(e) => remap[i] = *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = verts.len() as u32;
                e.insert(id);
                verts.push(*g);
                remap[i] = id;
            }
        }
    }
    let mut faces = Vec::with_capacity(tm.faces.len());
    for f in &tm.faces {
        let g = [
            remap[f[0] as usize],
            remap[f[1] as usize],
            remap[f[2] as usize],
        ];
        if g[0] == g[1] || g[1] == g[2] || g[0] == g[2] {
            return Err(MeshError::DegenerateFace);
        }
        faces.push(g);
    }
    let mesh = Mesh::from_parts(verts, &faces)?;
    Ok((mesh, q))
}

/// Rebuild a `TriMesh` from an editable mesh (dequantised, compacted ids).
pub fn to_trimesh(mesh: &Mesh, q: &Quantizer) -> TriMesh {
    let mut id_map = std::collections::HashMap::new();
    let mut vertices = Vec::with_capacity(mesh.vertex_count());
    for (vid, g) in mesh.grid_positions() {
        let f = q.dequantize([g.x, g.y, g.z]);
        id_map.insert(vid, vertices.len() as u32);
        vertices.push(tripro_geom::vec3(f[0], f[1], f[2]));
    }
    let faces = mesh
        .face_ids()
        .map(|f| {
            let [a, b, c] = mesh.face(f);
            [id_map[&a], id_map[&b], id_map[&c]]
        })
        .collect();
    TriMesh { vertices, faces }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;

    fn unit_tet() -> TriMesh {
        TriMesh::new(
            vec![
                vec3(0.0, 0.0, 0.0),
                vec3(1.0, 0.0, 0.0),
                vec3(0.0, 1.0, 0.0),
                vec3(0.0, 0.0, 1.0),
            ],
            vec![[0, 2, 1], [0, 1, 3], [1, 2, 3], [0, 3, 2]],
        )
    }

    #[test]
    fn measures() {
        let t = unit_tet();
        assert!((t.volume() - 1.0 / 6.0).abs() < 1e-12);
        assert!(t.surface_area() > 1.0);
        assert_eq!(t.triangles().len(), 4);
    }

    #[test]
    fn weld_exact_duplicates() {
        let mut t = unit_tet();
        // Duplicate vertex 1 and use the duplicate in one face.
        t.vertices.push(t.vertices[1]);
        t.faces[1] = [0, 4, 3];
        let removed = t.weld(0.0);
        assert_eq!(removed, 1);
        assert_eq!(t.vertices.len(), 4);
        assert!(t.faces.iter().all(|f| f.iter().all(|&v| v < 4)));
        assert_eq!(t.faces.len(), 4);
    }

    #[test]
    fn weld_epsilon_merges_near_points() {
        let mut t = unit_tet();
        t.vertices.push(vec3(1e-9, 0.0, 0.0)); // near vertex 0
        t.faces[1] = [4, 1, 3];
        let removed = t.weld(1e-6);
        assert_eq!(removed, 1);
        assert_eq!(t.faces.len(), 4);
        assert_eq!(t.faces[1], [0, 1, 3]);
    }

    #[test]
    fn weld_drops_collapsed_faces() {
        let mut t = unit_tet();
        t.vertices.push(t.vertices[2]);
        t.faces.push([2, 4, 0]); // becomes degenerate after weld
        t.weld(0.0);
        assert_eq!(t.faces.len(), 4);
    }

    #[test]
    fn quantize_roundtrip_geometry() {
        let t = unit_tet();
        let (m, q) = quantize_mesh(&t, 16).unwrap();
        m.validate_closed_manifold().unwrap();
        assert_eq!(m.vertex_count(), 4);
        assert_eq!(m.face_count(), 4);
        let back = to_trimesh(&m, &q);
        assert_eq!(back.vertices.len(), 4);
        // Max error bounded by the grid diagonal.
        for (a, b) in t.vertices.iter().zip(&back.vertices) {
            assert!(a.dist(*b) <= q.max_error() * 1.0001);
        }
        // Volume approximately preserved.
        assert!((back.volume() - t.volume()).abs() < 1e-3);
    }

    #[test]
    fn quantize_collision_detected() {
        // Two interior vertices 0.6 apart in a 10-unit box collapse onto the
        // same grid point at 1 bit per axis.
        let t = TriMesh::new(
            vec![
                vec3(0.0, 0.0, 0.0),
                vec3(10.0, 10.0, 10.0),
                vec3(4.0, 4.0, 4.0),
                vec3(4.6, 4.6, 4.6),
            ],
            vec![[2, 3, 0], [2, 1, 3]],
        );
        assert!(matches!(
            quantize_mesh(&t, 1),
            Err(MeshError::DegenerateFace)
        ));
    }

    #[test]
    fn transform_helpers() {
        let mut t = unit_tet();
        t.translate(vec3(1.0, 2.0, 3.0));
        assert_eq!(t.vertices[0], vec3(1.0, 2.0, 3.0));
        t.scale(2.0);
        assert_eq!(t.vertices[0], vec3(2.0, 4.0, 6.0));
        let bb = t.aabb();
        assert_eq!(bb.lo, vec3(2.0, 4.0, 6.0));
    }
}
