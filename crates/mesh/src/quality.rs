//! LOD distortion metrics: how far a simplified LOD deviates from the full
//! mesh, in the spirit of the distortion-rate curves of the progressive-
//! compression literature the paper builds on (PPMC et al.). The paper
//! itself uses LODs only through the subset guarantee; these metrics let a
//! user *choose* quantisation bits and ladder depth with error in hand.

use crate::ppvp::CompressedMesh;
use tripro_coder::DecodeError;
use tripro_geom::{distance::point_triangle_dist2, Triangle, Vec3};

/// Sampled one-sided Hausdorff distance from `from`'s surface to `to`'s
/// surface: the maximum over sample points of the distance to the nearest
/// `to`-triangle. Deterministic: samples are placed at each triangle's
/// vertices, edge midpoints and centroid, weighted implicitly by the mesh's
/// own tessellation.
pub fn one_sided_hausdorff(from: &[Triangle], to: &[Triangle]) -> f64 {
    let mut worst2 = 0.0f64;
    for t in from {
        for p in sample_points(t) {
            let mut best2 = f64::INFINITY;
            for u in to {
                let d2 = point_triangle_dist2(p, u);
                if d2 < best2 {
                    best2 = d2;
                    if tripro_geom::is_exactly_zero(best2) {
                        break;
                    }
                }
            }
            worst2 = worst2.max(best2);
        }
    }
    worst2.sqrt()
}

fn sample_points(t: &Triangle) -> [Vec3; 7] {
    [
        t.a,
        t.b,
        t.c,
        (t.a + t.b) * 0.5,
        (t.b + t.c) * 0.5,
        (t.c + t.a) * 0.5,
        t.centroid(),
    ]
}

/// Distortion profile of one compressed object: for every LOD below the
/// top, the sampled one-sided Hausdorff distance from that LOD's surface to
/// the full-resolution surface, both absolute and relative to the object's
/// bounding-box diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct DistortionProfile {
    /// `(lod, absolute error, error / bbox diagonal)`.
    pub per_lod: Vec<(usize, f64, f64)>,
}

/// Measure the distortion ladder of `cm`.
///
/// Cost is `O(Σ faces(lod) × faces(top))` — meant for profiling sessions
/// and the ablation benches, not the query path.
pub fn distortion_profile(cm: &CompressedMesh) -> Result<DistortionProfile, DecodeError> {
    let mut dec = cm.decoder()?;
    let mut lods: Vec<(usize, Vec<Triangle>)> = Vec::new();
    for lod in 0..=cm.max_lod() {
        dec.decode_to(lod)?;
        lods.push((lod, dec.triangles()));
    }
    let (_, full) = lods
        .last()
        .cloned()
        // tripro_lint::allow(no_panic): the 0..=max_lod loop above always pushes the base rung
        .expect("ladder has at least the base");
    let diag = cm.aabb().diagonal().max(f64::MIN_POSITIVE);
    let per_lod = lods
        .iter()
        .take(lods.len() - 1)
        .map(|(lod, tris)| {
            let e = one_sided_hausdorff(tris, &full);
            (*lod, e, e / diag)
        })
        .collect();
    Ok(DistortionProfile { per_lod })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppvp::{encode, EncoderConfig};
    use crate::testutil::sphere;
    use tripro_geom::vec3;

    #[test]
    fn identical_meshes_have_zero_error() {
        let s = sphere(vec3(0.0, 0.0, 0.0), 1.0, 1).triangles();
        // Closest-point evaluation on shared vertices leaves ~1e-16 noise.
        assert!(one_sided_hausdorff(&s, &s) < 1e-9);
    }

    #[test]
    fn offset_sheet_distance_is_offset() {
        let a = vec![Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(0.0, 1.0, 0.0),
        )];
        let b = vec![Triangle::new(
            vec3(0.0, 0.0, 2.0),
            vec3(1.0, 0.0, 2.0),
            vec3(0.0, 1.0, 2.0),
        )];
        assert!((one_sided_hausdorff(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hausdorff_is_one_sided() {
        // A small patch vs a big plane: patch→plane is 0, plane→patch not.
        let patch = vec![Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(0.1, 0.0, 0.0),
            vec3(0.0, 0.1, 0.0),
        )];
        let plane = vec![Triangle::new(
            vec3(-10.0, -10.0, 0.0),
            vec3(10.0, -10.0, 0.0),
            vec3(0.0, 10.0, 0.0),
        )];
        assert!(one_sided_hausdorff(&patch, &plane) < 1e-9);
        assert!(one_sided_hausdorff(&plane, &patch) > 5.0);
    }

    #[test]
    fn distortion_decreases_with_lod() {
        let tm = sphere(vec3(5.0, 5.0, 5.0), 2.0, 3);
        let cm = encode(&tm, &EncoderConfig::default()).unwrap();
        let prof = distortion_profile(&cm).unwrap();
        assert_eq!(prof.per_lod.len(), cm.max_lod());
        // Error shrinks (weakly) as LOD rises, and is a small fraction of
        // the diagonal even at the base for a sphere.
        for w in prof.per_lod.windows(2) {
            assert!(
                w[1].1 <= w[0].1 * 1.25,
                "distortion should trend down: {:?}",
                prof.per_lod
            );
        }
        let (_, base_err, base_rel) = prof.per_lod[0];
        assert!(base_err > 0.0);
        assert!(base_rel < 0.25, "base error {base_rel} of diagonal");
        let (_, top_err, _) = *prof.per_lod.last().unwrap();
        assert!(top_err < base_err);
    }
}
