//! # tripro-mesh
//!
//! Polyhedral surface meshes and the PPVP progressive compression codec —
//! the primary contribution of the 3DPro paper (§3): multi-round
//! protruding-vertex pruning that yields a single compressed object holding
//! every level of detail, where each LOD is a guaranteed *progressive
//! approximation* (geometric subset) of the higher LODs.

pub mod decimate;
#[cfg(feature = "strict-invariants")]
pub mod invariant;
pub mod io;
pub mod mesh;
pub mod ppvp;
pub mod quality;
pub mod repair;
pub mod stats;
pub mod testutil;
pub mod trimesh;

pub use decimate::{
    classify_vertices, decimate_round, decimation_profile, try_apply_insertion, PruneMode,
    RemovalEvent, VertexClass,
};
pub use io::{load_mesh, load_obj, load_off, parse_obj, parse_off, save_obj, save_off, IoError};
pub use mesh::{Mesh, MeshError};
pub use ppvp::{encode, CompressedMesh, EncoderConfig, ProgressiveMesh};
pub use quality::{distortion_profile, one_sided_hausdorff, DistortionProfile};
pub use repair::{
    analyze, connected_components, fix_orientation, remove_duplicate_faces, MeshDiagnostics,
    RepairError,
};
pub use stats::{lod_profile, protruding_fraction, protruding_fraction_of, raw_size, LodProfile};
pub use trimesh::{quantize_mesh, to_trimesh, TriMesh};
