//! Vertex-removal decimation rounds and protruding-vertex classification
//! (paper §3).
//!
//! One *round of decimation* removes an independent set of vertices: when a
//! vertex is removed, the hole left by its star is re-triangulated with a
//! deterministic fan and all ring vertices become *irremovable* for the rest
//! of the round (§2.3). PPVP additionally only removes **protruding**
//! vertices (§3.1–3.2), which makes every simplified mesh a progressive
//! (subset) approximation of the original.

use crate::mesh::{Mesh, VertId};
use tripro_geom::{orient3d, IVec3, Orientation};

/// Maximum ring size for which removal is attempted; larger stars are kept
/// to bound re-triangulation fan quality.
pub const MAX_VALENCE: usize = 12;

/// Smallest closed triangle mesh: never decimate below a tetrahedron.
pub const MIN_FACES: usize = 4;

/// What a vertex's removal would do to the enclosed solid (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexClass {
    /// Removal only cuts solid tetrahedra off (or leaves volume unchanged):
    /// every fan face has the vertex on its non-negative side.
    Protruding,
    /// Removal would fill at least one "pit", growing the solid.
    Recessing,
}

/// Which vertices a decimation round may remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneMode {
    /// PPVP: protruding vertices only — guarantees subset approximations.
    ProtrudingOnly,
    /// PPMC-like: any removable vertex — better decimation rate, but the
    /// simplified mesh is neither a progressive nor a conservative
    /// approximation (used as the comparison coder).
    Any,
}

/// The record of one vertex removal, sufficient to invert it exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovalEvent {
    /// Id of the removed vertex (encoder id space).
    pub removed: VertId,
    /// Ordered one-ring at removal time, rotated to start at its
    /// minimum-id vertex (the fan anchor), CCW from outside.
    pub ring: Vec<VertId>,
    /// Grid position of the removed vertex.
    pub pos: IVec3,
}

/// Rotate a ring so it starts at its minimum-id vertex. The cyclic order is
/// preserved, making the fan anchor deterministic.
pub fn canonical_rotation(ring: &[VertId]) -> Vec<VertId> {
    let k = ring.len();
    let anchor = (0..k).min_by_key(|&i| ring[i]).unwrap_or(0);
    (0..k).map(|i| ring[(anchor + i) % k]).collect()
}

/// Classify a vertex against the deterministic fan over `ring` (which must
/// already start at the anchor). `None` when some fan triangle is degenerate
/// (classification is then undefined and removal is skipped).
pub fn classify_against_fan(mesh: &Mesh, v: VertId, ring: &[VertId]) -> Option<VertexClass> {
    let p = mesh.position(v);
    let r0 = mesh.position(ring[0]);
    let mut class = VertexClass::Protruding;
    for i in 1..ring.len() - 1 {
        let ri = mesh.position(ring[i]);
        let rj = mesh.position(ring[i + 1]);
        if tripro_geom::ivec::is_degenerate_tri(r0, ri, rj) {
            return None;
        }
        match orient3d(r0, ri, rj, p) {
            Orientation::Positive | Orientation::Coplanar => {}
            Orientation::Negative => class = VertexClass::Recessing,
        }
    }
    Some(class)
}

/// Classify every live vertex (for dataset statistics, §6.2): vertices whose
/// ring is not a simple disk or whose fan degenerates are skipped.
pub fn classify_vertices(mesh: &Mesh) -> Vec<(VertId, VertexClass)> {
    let mut out = Vec::new();
    for v in mesh.vertex_ids() {
        if let Some(ring) = mesh.ordered_ring(v) {
            if ring.len() < 3 || ring.len() > MAX_VALENCE {
                continue;
            }
            let ring = canonical_rotation(&ring);
            if let Some(c) = classify_against_fan(mesh, v, &ring) {
                out.push((v, c));
            }
        }
    }
    out
}

/// Check that removing `v` and fanning `ring` keeps the mesh a closed
/// manifold: no fan edge may already exist outside `v`'s star.
fn fan_is_manifold_safe(mesh: &Mesh, v: VertId, ring: &[VertId]) -> bool {
    // New interior edges are (ring[0], ring[i]) for i in 2..k-1.
    for i in 2..ring.len() - 1 {
        if mesh.edge_used_outside(ring[0], ring[i], v) {
            return false;
        }
    }
    true
}

/// Attempt to remove vertex `v`, returning the event on success.
fn try_remove(mesh: &mut Mesh, v: VertId, mode: PruneMode) -> Option<RemovalEvent> {
    if mesh.face_count() < MIN_FACES + 2 {
        return None; // would drop below a tetrahedron
    }
    let ring = mesh.ordered_ring(v)?;
    if ring.len() < 3 || ring.len() > MAX_VALENCE {
        return None;
    }
    let ring = canonical_rotation(&ring);
    let class = classify_against_fan(mesh, v, &ring)?;
    if mode == PruneMode::ProtrudingOnly && class != VertexClass::Protruding {
        return None;
    }
    if !fan_is_manifold_safe(mesh, v, &ring) {
        return None;
    }

    let pos = mesh.position(v);
    let incident: Vec<_> = mesh.faces_of(v).to_vec();
    for f in incident {
        mesh.remove_face(f);
    }
    mesh.remove_vertex(v);
    for i in 1..ring.len() - 1 {
        mesh.add_face(ring[0], ring[i], ring[i + 1]);
    }
    Some(RemovalEvent {
        removed: v,
        ring,
        pos,
    })
}

/// Run one decimation round in deterministic ascending-id order.
///
/// Returns the removal events in the order they were applied (the decoder
/// replays them in reverse). An empty result means the mesh cannot be
/// simplified further under `mode`.
pub fn decimate_round(mesh: &mut Mesh, mode: PruneMode) -> Vec<RemovalEvent> {
    let bound = mesh.vertex_id_bound();
    let mut irremovable = vec![false; bound as usize];
    let mut events = Vec::new();
    for v in 0..bound {
        if !mesh.is_vertex_alive(v) || irremovable[v as usize] {
            continue;
        }
        if let Some(ev) = try_remove(mesh, v, mode) {
            for &r in &ev.ring {
                irremovable[r as usize] = true;
            }
            events.push(ev);
        }
    }
    events
}

/// Invert a removal event: delete the fan and restore the vertex star.
/// `expected_id` is the id the re-inserted vertex must take in `mesh`'s id
/// space, and `ring` must already be mapped to that space.
///
/// Panics if the fan is absent — callers validating untrusted input should
/// use [`try_apply_insertion`].
pub fn apply_insertion(mesh: &mut Mesh, ring: &[VertId], pos: IVec3, expected_id: VertId) {
    try_apply_insertion(mesh, ring, pos, expected_id)
        // tripro_lint::allow(no_panic): documented panicking wrapper; untrusted input goes through try_apply_insertion
        .expect("fan face must exist during progressive decode");
}

/// Fallible [`apply_insertion`]: verifies the fan exists and the ring is
/// well-formed before mutating, so corrupt streams leave the mesh intact.
pub fn try_apply_insertion(
    mesh: &mut Mesh,
    ring: &[VertId],
    pos: IVec3,
    expected_id: VertId,
) -> Result<(), crate::mesh::MeshError> {
    if ring.len() < 3 {
        return Err(crate::mesh::MeshError::DegenerateFace);
    }
    // Ring vertices must be distinct and alive.
    let mut sorted: Vec<VertId> = ring.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != ring.len() || !ring.iter().all(|&r| mesh.is_vertex_alive(r)) {
        return Err(crate::mesh::MeshError::NotClosedManifold(
            "insertion ring repeats or references dead vertices".into(),
        ));
    }
    // All fan faces must exist before any mutation.
    let mut fan = Vec::with_capacity(ring.len() - 2);
    for i in 1..ring.len() - 1 {
        let f = mesh
            .find_face(ring[0], ring[i], ring[i + 1])
            .ok_or_else(|| {
                crate::mesh::MeshError::NotClosedManifold("fan face missing during decode".into())
            })?;
        fan.push(f);
    }
    let mut fan_sorted = fan.clone();
    fan_sorted.sort_unstable();
    fan_sorted.dedup();
    if fan_sorted.len() != fan.len() {
        return Err(crate::mesh::MeshError::NotClosedManifold(
            "insertion fan repeats a face".into(),
        ));
    }
    if expected_id as usize > mesh.vertex_id_bound() as usize || mesh.is_vertex_alive(expected_id) {
        return Err(crate::mesh::MeshError::BadVertexRef(expected_id));
    }
    for f in fan {
        mesh.remove_face(f);
    }
    let v = mesh.revive_or_add_vertex(expected_id, pos);
    for i in 0..ring.len() {
        let a = ring[i];
        let b = ring[(i + 1) % ring.len()];
        mesh.add_face(v, a, b);
    }
    Ok(())
}

/// Face counts after each successive decimation round (Fig 11): index 0 is
/// the original face count; the profile stops when a round removes nothing
/// or `rounds` is reached.
pub fn decimation_profile(mesh: &Mesh, mode: PruneMode, rounds: usize) -> Vec<usize> {
    let mut m = mesh.clone();
    let mut out = vec![m.face_count()];
    for _ in 0..rounds {
        if decimate_round(&mut m, mode).is_empty() {
            break;
        }
        out.push(m.face_count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::tetrahedron;
    use tripro_geom::ivec3;

    /// Octahedron with one apex pulled far out: apex is protruding.
    fn spiky_octahedron() -> Mesh {
        let p = vec![
            ivec3(8, 0, 8),
            ivec3(0, 8, 8),
            ivec3(-8, 0, 8),
            ivec3(0, -8, 8),
            ivec3(0, 0, 32), // protruding apex
            ivec3(0, 0, 0),  // bottom apex
        ];
        let f = [
            [0u32, 1, 4],
            [1, 2, 4],
            [2, 3, 4],
            [3, 0, 4],
            [1, 0, 5],
            [2, 1, 5],
            [3, 2, 5],
            [0, 3, 5],
        ];
        Mesh::from_parts(p, &f).expect("valid")
    }

    /// Octahedron with the top apex pushed *into* the solid: recessing.
    fn dented_octahedron() -> Mesh {
        let p = vec![
            ivec3(8, 0, 8),
            ivec3(0, 8, 8),
            ivec3(-8, 0, 8),
            ivec3(0, -8, 8),
            ivec3(0, 0, 4), // dented apex (below the 0-1-2-3 plane)
            ivec3(0, 0, 0),
        ];
        let f = [
            [0u32, 1, 4],
            [1, 2, 4],
            [2, 3, 4],
            [3, 0, 4],
            [1, 0, 5],
            [2, 1, 5],
            [3, 2, 5],
            [0, 3, 5],
        ];
        Mesh::from_parts(p, &f).expect("valid")
    }

    #[test]
    fn canonical_rotation_starts_at_min() {
        assert_eq!(canonical_rotation(&[5, 3, 9, 7]), vec![3, 9, 7, 5]);
        assert_eq!(canonical_rotation(&[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn spike_is_protruding() {
        let m = spiky_octahedron();
        let ring = canonical_rotation(&m.ordered_ring(4).unwrap());
        assert_eq!(
            classify_against_fan(&m, 4, &ring),
            Some(VertexClass::Protruding)
        );
    }

    #[test]
    fn dent_is_recessing() {
        let m = dented_octahedron();
        let ring = canonical_rotation(&m.ordered_ring(4).unwrap());
        assert_eq!(
            classify_against_fan(&m, 4, &ring),
            Some(VertexClass::Recessing)
        );
    }

    #[test]
    fn ppvp_round_shrinks_volume_only() {
        let mut m = spiky_octahedron();
        let before = m.signed_volume6();
        let events = decimate_round(&mut m, PruneMode::ProtrudingOnly);
        assert!(!events.is_empty(), "spike should be removable");
        m.validate_closed_manifold().unwrap();
        let after = m.signed_volume6();
        assert!(after <= before, "PPVP must never grow the solid");
        assert!(after > 0);
    }

    #[test]
    fn ppvp_skips_recessing_vertex() {
        let mut m = dented_octahedron();
        let before_vol = m.signed_volume6();
        let events = decimate_round(&mut m, PruneMode::ProtrudingOnly);
        // Vertex 4 must not be among the removed (it is recessing).
        assert!(events.iter().all(|e| e.removed != 4));
        assert!(m.signed_volume6() <= before_vol);
        m.validate_closed_manifold().unwrap();
    }

    #[test]
    fn any_mode_may_remove_recessing() {
        let mut m = dented_octahedron();
        let events = decimate_round(&mut m, PruneMode::Any);
        m.validate_closed_manifold().unwrap();
        // In Any mode the dented apex (vertex 4, lowest removable id) goes,
        // and the volume *grows* — the PPMC failure mode the paper fixes.
        if events.iter().any(|e| e.removed == 4) {
            assert!(m.signed_volume6() > dented_octahedron().signed_volume6());
        }
    }

    #[test]
    fn tetrahedron_cannot_decimate() {
        let mut m = tetrahedron();
        let events = decimate_round(&mut m, PruneMode::Any);
        assert!(events.is_empty());
        assert_eq!(m.face_count(), 4);
    }

    #[test]
    fn ring_vertices_become_irremovable() {
        let mut m = spiky_octahedron();
        let events = decimate_round(&mut m, PruneMode::ProtrudingOnly);
        // After removing a vertex, its entire ring is locked; with 6 vertices
        // at most one removal can happen (ring covers 4 of the other 5).
        assert!(events.len() <= 2);
    }

    #[test]
    fn insertion_inverts_removal() {
        let mut m = spiky_octahedron();
        let orig = m.clone();
        let events = decimate_round(&mut m, PruneMode::ProtrudingOnly);
        m.validate_closed_manifold().unwrap();
        // Replay in reverse.
        for ev in events.iter().rev() {
            apply_insertion(&mut m, &ev.ring, ev.pos, ev.removed);
        }
        m.validate_closed_manifold().unwrap();
        assert_eq!(m.vertex_count(), orig.vertex_count());
        assert_eq!(m.face_count(), orig.face_count());
        assert_eq!(m.signed_volume6(), orig.signed_volume6());
        // Same face set (as unordered triples up to rotation).
        let norm = |mesh: &Mesh| {
            let mut fs: Vec<[u32; 3]> = mesh
                .face_ids()
                .map(|f| {
                    let v = mesh.face(f);
                    let m = (0..3).min_by_key(|&i| v[i]).unwrap();
                    [v[m], v[(m + 1) % 3], v[(m + 2) % 3]]
                })
                .collect();
            fs.sort_unstable();
            fs
        };
        assert_eq!(norm(&m), norm(&orig));
    }

    #[test]
    fn insertion_reuses_dead_id_slot() {
        // In the decoder the inserted id is freshly appended; this helper
        // asserts the expected id matches what add_vertex returns.
        let mut m = Mesh::new();
        let a = m.add_vertex(ivec3(0, 0, 0));
        let b = m.add_vertex(ivec3(8, 0, 0));
        let c = m.add_vertex(ivec3(0, 8, 0));
        let d = m.add_vertex(ivec3(0, 0, 8));
        m.add_face(a, c, b);
        m.add_face(a, b, d);
        m.add_face(b, c, d);
        m.add_face(a, d, c);
        m.validate_closed_manifold().unwrap();
        // Insert a new apex over face (a,b,d) — ring (a,b,d).
        let f = m.find_face(a, b, d).unwrap();
        let _ = f;
        apply_insertion(&mut m, &[a, b, d], ivec3(2, 2, 9), 4);
        m.validate_closed_manifold().unwrap();
        assert_eq!(m.vertex_count(), 5);
        assert_eq!(m.face_count(), 6);
    }

    #[test]
    fn decimation_profile_monotonic() {
        let m = spiky_octahedron();
        let prof = decimation_profile(&m, PruneMode::Any, 10);
        assert_eq!(prof[0], 8);
        for w in prof.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn classify_vertices_counts() {
        let m = spiky_octahedron();
        let classes = classify_vertices(&m);
        assert!(!classes.is_empty());
        let protruding = classes
            .iter()
            .filter(|(_, c)| *c == VertexClass::Protruding)
            .count();
        // A convex-ish shape: most vertices protrude.
        assert!(protruding * 2 >= classes.len());
    }
}
