//! Mesh repair utilities: orientation fixing, duplicate-face removal and
//! connected-component splitting.
//!
//! The PPVP encoder requires closed, *consistently oriented* 2-manifolds.
//! Meshes from segmentation pipelines or OBJ exports frequently violate
//! that with mixed winding; these helpers make real-world inputs ingestible.

use crate::trimesh::TriMesh;
use std::collections::HashMap;

/// Diagnostics from [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeshDiagnostics {
    pub vertices: usize,
    pub faces: usize,
    /// Undirected edges used by exactly two faces.
    pub manifold_edges: usize,
    /// Undirected edges used once (boundary) — nonzero means not closed.
    pub boundary_edges: usize,
    /// Undirected edges used more than twice — nonzero means non-manifold.
    pub nonmanifold_edges: usize,
    /// Adjacent face pairs whose windings disagree.
    pub inconsistent_pairs: usize,
    /// Connected components (by shared edges).
    pub components: usize,
}

impl MeshDiagnostics {
    /// `true` when the mesh is a closed, consistently oriented manifold —
    /// ready for PPVP encoding.
    #[must_use]
    pub fn is_encodable(&self) -> bool {
        self.boundary_edges == 0 && self.nonmanifold_edges == 0 && self.inconsistent_pairs == 0
    }
}

fn edge_key(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// Map undirected edge → faces using it (with the direction each uses).
fn edge_faces(tm: &TriMesh) -> HashMap<(u32, u32), Vec<(usize, bool)>> {
    let mut map: HashMap<(u32, u32), Vec<(usize, bool)>> =
        HashMap::with_capacity(tm.faces.len() * 3 / 2);
    for (fi, f) in tm.faces.iter().enumerate() {
        for i in 0..3 {
            let (a, b) = (f[i], f[(i + 1) % 3]);
            // `true` when the face traverses the edge in canonical (min→max)
            // direction.
            map.entry(edge_key(a, b)).or_default().push((fi, a < b));
        }
    }
    map
}

/// Inspect a mesh without modifying it.
pub fn analyze(tm: &TriMesh) -> MeshDiagnostics {
    let edges = edge_faces(tm);
    let mut d = MeshDiagnostics {
        vertices: tm.vertices.len(),
        faces: tm.faces.len(),
        ..Default::default()
    };
    for users in edges.values() {
        match users.len() {
            1 => d.boundary_edges += 1,
            2 => {
                d.manifold_edges += 1;
                // Consistent orientation: the two faces traverse the shared
                // edge in opposite directions.
                if users[0].1 == users[1].1 {
                    d.inconsistent_pairs += 1;
                }
            }
            _ => d.nonmanifold_edges += 1,
        }
    }
    d.components = components_impl(tm, &edges).len();
    d
}

fn components_impl(
    tm: &TriMesh,
    edges: &HashMap<(u32, u32), Vec<(usize, bool)>>,
) -> Vec<Vec<usize>> {
    let mut comp = vec![usize::MAX; tm.faces.len()];
    let mut out = Vec::new();
    for start in 0..tm.faces.len() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = out.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(f) = stack.pop() {
            members.push(f);
            let face = tm.faces[f];
            for i in 0..3 {
                let key = edge_key(face[i], face[(i + 1) % 3]);
                for &(g, _) in &edges[&key] {
                    if comp[g] == usize::MAX {
                        comp[g] = id;
                        stack.push(g);
                    }
                }
            }
        }
        out.push(members);
    }
    out
}

/// Split into edge-connected components, each with compacted vertices.
pub fn connected_components(tm: &TriMesh) -> Vec<TriMesh> {
    let edges = edge_faces(tm);
    components_impl(tm, &edges)
        .into_iter()
        .map(|faces| {
            let mut remap: HashMap<u32, u32> = HashMap::new();
            let mut vertices = Vec::new();
            let mut out_faces = Vec::with_capacity(faces.len());
            for fi in faces {
                let mut nf = [0u32; 3];
                for (slot, &v) in nf.iter_mut().zip(&tm.faces[fi]) {
                    *slot = *remap.entry(v).or_insert_with(|| {
                        vertices.push(tm.vertices[v as usize]);
                        (vertices.len() - 1) as u32
                    });
                }
                out_faces.push(nf);
            }
            TriMesh::new(vertices, out_faces)
        })
        .collect()
}

/// Remove exact duplicate faces (same vertex set, either winding),
/// keeping the first occurrence. Returns the number removed.
pub fn remove_duplicate_faces(tm: &mut TriMesh) -> usize {
    let mut seen = std::collections::HashSet::with_capacity(tm.faces.len());
    let before = tm.faces.len();
    tm.faces.retain(|f| {
        let mut k = *f;
        k.sort_unstable();
        seen.insert(k)
    });
    before - tm.faces.len()
}

/// Errors from [`fix_orientation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// An edge is used by more than two faces; winding propagation is
    /// ill-defined.
    NonManifoldEdge(u32, u32),
    /// A component is not closed, so "outward" is undefined.
    OpenSurface,
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::NonManifoldEdge(a, b) => {
                write!(f, "edge ({a},{b}) used by more than two faces")
            }
            RepairError::OpenSurface => write!(f, "surface has boundary edges"),
        }
    }
}

impl std::error::Error for RepairError {}

/// Make the winding consistent across every component and outward-facing
/// (positive enclosed volume). Returns the number of faces flipped.
pub fn fix_orientation(tm: &mut TriMesh) -> Result<usize, RepairError> {
    let edges = edge_faces(tm);
    for (&(a, b), users) in &edges {
        if users.len() > 2 {
            return Err(RepairError::NonManifoldEdge(a, b));
        }
        if users.len() < 2 {
            return Err(RepairError::OpenSurface);
        }
    }

    // BFS propagate winding within each component.
    let n = tm.faces.len();
    let mut visited = vec![false; n];
    let mut flip = vec![false; n];
    let mut flipped = 0usize;
    let edges_of = |f: &[u32; 3]| -> [(u32, u32, bool); 3] {
        let mut out = [(0, 0, false); 3];
        for i in 0..3 {
            let (a, b) = (f[i], f[(i + 1) % 3]);
            out[i] = (a.min(b), a.max(b), a < b);
        }
        out
    };
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        let mut component = vec![start];
        while let Some(f) = queue.pop_front() {
            let face = tm.faces[f];
            for (lo, hi, dir) in edges_of(&face) {
                // Effective direction after any pending flip of f.
                let dir_f = dir ^ flip[f];
                for &(g, _) in &edges[&(lo, hi)] {
                    if g == f || visited[g] {
                        continue;
                    }
                    let gface = tm.faces[g];
                    let gdir_raw = edges_of(&gface)
                        .iter()
                        .find(|(l, h, _)| (*l, *h) == (lo, hi))
                        .map(|(_, _, d)| *d)
                        // tripro_lint::allow(no_panic): the edge map was built from these same faces one pass earlier
                        .unwrap();
                    // Consistent when the neighbours traverse oppositely.
                    flip[g] = gdir_raw == dir_f;
                    visited[g] = true;
                    component.push(g);
                    queue.push_back(g);
                }
            }
        }
        // Apply pending flips for this component, then orient outward.
        for &f in &component {
            if flip[f] {
                tm.faces[f].swap(1, 2);
                flipped += 1;
            }
        }
        let vol: f64 = component
            .iter()
            .map(|&f| {
                let t = tm.faces[f];
                let (a, b, c) = (
                    tm.vertices[t[0] as usize],
                    tm.vertices[t[1] as usize],
                    tm.vertices[t[2] as usize],
                );
                a.dot(b.cross(c)) / 6.0
            })
            .sum();
        if vol < 0.0 {
            for &f in &component {
                tm.faces[f].swap(1, 2);
            }
            flipped += component.len();
        }
    }
    Ok(flipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{cube, sphere};
    use tripro_geom::vec3;

    #[test]
    fn analyze_clean_sphere() {
        let s = sphere(vec3(0.0, 0.0, 0.0), 1.0, 2);
        let d = analyze(&s);
        assert!(d.is_encodable(), "{d:?}");
        assert_eq!(d.boundary_edges, 0);
        assert_eq!(d.components, 1);
        assert_eq!(d.manifold_edges, s.faces.len() * 3 / 2);
    }

    #[test]
    fn analyze_detects_boundary_and_inconsistency() {
        let mut s = sphere(vec3(0.0, 0.0, 0.0), 1.0, 1);
        s.faces.pop();
        let d = analyze(&s);
        assert_eq!(d.boundary_edges, 3);
        assert!(!d.is_encodable());

        let mut s = sphere(vec3(0.0, 0.0, 0.0), 1.0, 1);
        s.faces[0].swap(1, 2); // flip one face
        let d = analyze(&s);
        assert_eq!(d.inconsistent_pairs, 3);
        assert!(!d.is_encodable());
    }

    #[test]
    fn fix_orientation_repairs_random_flips() {
        let mut s = sphere(vec3(0.0, 0.0, 0.0), 2.0, 2);
        let truth_volume = s.volume();
        // Flip a third of the faces.
        for i in (0..s.faces.len()).step_by(3) {
            s.faces[i].swap(1, 2);
        }
        assert!(!analyze(&s).is_encodable());
        let flipped = fix_orientation(&mut s).unwrap();
        assert!(flipped > 0);
        let d = analyze(&s);
        assert!(d.is_encodable(), "{d:?}");
        assert!(
            (s.volume() - truth_volume).abs() < 1e-9,
            "outward orientation restored"
        );
        // And it is now PPVP-encodable.
        crate::ppvp::encode(&s, &crate::ppvp::EncoderConfig::default()).unwrap();
    }

    #[test]
    fn fix_orientation_flips_inverted_component() {
        let mut c = cube(vec3(0.0, 0.0, 0.0), 2.0);
        for f in &mut c.faces {
            f.swap(1, 2); // consistently inside-out
        }
        assert!(c.volume() < 0.0);
        fix_orientation(&mut c).unwrap();
        assert!((c.volume() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fix_orientation_rejects_open_and_nonmanifold() {
        let mut s = sphere(vec3(0.0, 0.0, 0.0), 1.0, 1);
        s.faces.pop();
        assert_eq!(fix_orientation(&mut s), Err(RepairError::OpenSurface));

        let mut s = sphere(vec3(0.0, 0.0, 0.0), 1.0, 1);
        let f0 = s.faces[0];
        s.faces.push(f0); // edge now used 3x (actually all three edges)
        assert!(matches!(
            fix_orientation(&mut s),
            Err(RepairError::NonManifoldEdge(_, _))
        ));
    }

    #[test]
    fn components_split_and_compact() {
        let mut a = sphere(vec3(0.0, 0.0, 0.0), 1.0, 1);
        let b = cube(vec3(10.0, 0.0, 0.0), 2.0);
        // Merge into one soup.
        let off = a.vertices.len() as u32;
        a.vertices.extend(b.vertices.iter());
        a.faces
            .extend(b.faces.iter().map(|f| [f[0] + off, f[1] + off, f[2] + off]));
        assert_eq!(analyze(&a).components, 2);
        let mut comps = connected_components(&a);
        comps.sort_by_key(|c| c.faces.len());
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].faces.len(), 12);
        assert_eq!(comps[1].faces.len(), 32);
        // Compacted: no dangling vertices.
        assert_eq!(comps[0].vertices.len(), 8);
    }

    #[test]
    fn duplicate_faces_removed() {
        let mut c = cube(vec3(0.0, 0.0, 0.0), 1.0);
        let f = c.faces[3];
        c.faces.push(f);
        c.faces.push([f[1], f[2], f[0]]); // rotation
        c.faces.push([f[0], f[2], f[1]]); // reflection
        assert_eq!(remove_duplicate_faces(&mut c), 3);
        assert_eq!(c.faces.len(), 12);
    }
}
