//! # tripro-synth
//!
//! Synthetic dataset generators standing in for the paper's proprietary
//! 3D pathology reconstructions: near-convex perturbed-icosphere *nuclei*
//! and bifurcated capsule-tree *vessels* polygonised by marching
//! tetrahedra, plus the tissue-block placement logic that lays them out
//! the way §6.2 describes (uniform, intra-dataset disjoint).

pub mod dataset;
pub mod marching;
pub mod nuclei;
pub mod rbc;
pub mod sdf;
pub mod vessel;

pub use dataset::{aabbs_disjoint, generate, DatasetConfig, TissueBlock};
pub use marching::{polygonize, GridSpec};
pub use nuclei::{icosphere, nucleus, NucleusConfig};
pub use rbc::{rbc, BiconcaveDisc, RbcConfig};
pub use sdf::{smooth_min, Capsule, Cone, Sdf, SmoothUnion, Sphere, Union};
pub use vessel::{grow_skeleton, vessel, SkeletonSegment, Vessel, VesselConfig};
