//! Tissue-block dataset builder: places nuclei and vessels in a shared
//! volume the way the paper's datasets are laid out (§6.2): objects of the
//! same dataset never intersect and are roughly uniformly distributed.
//!
//! Produces the dataset combinations the five experiment types need:
//! two nuclei segmentations A and B (B is a jittered re-segmentation of A,
//! so the intersection join A⋈B finds matches, §6.3), and a vessel set
//! sharing the block with the nuclei for the NV joins.

use crate::nuclei::{nucleus, NucleusConfig};
use crate::vessel::{vessel, VesselConfig};
use rand::{Rng, SeedableRng};
use tripro_geom::{vec3, Aabb, Vec3};
use tripro_mesh::TriMesh;

/// Dataset scale and shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    pub nuclei_count: usize,
    pub vessel_count: usize,
    pub nucleus: NucleusConfig,
    pub vessel: VesselConfig,
    /// Master seed; every object derives its own deterministic stream.
    pub seed: u64,
    /// Nucleus cell size as a multiple of the nucleus diameter; must stay
    /// > 1 to guarantee intra-dataset disjointness.
    pub spacing: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            nuclei_count: 500,
            vessel_count: 4,
            nucleus: NucleusConfig::default(),
            vessel: VesselConfig::default(),
            seed: 0x3D9E0,
            spacing: 1.8,
        }
    }
}

/// A generated tissue block.
#[derive(Debug, Clone)]
pub struct TissueBlock {
    /// Primary nuclei segmentation (dataset D₁).
    pub nuclei_a: Vec<TriMesh>,
    /// Alternative segmentation of the same tissue: each nucleus of A
    /// re-segmented with jitter, so A⋈B intersects frequently.
    pub nuclei_b: Vec<TriMesh>,
    /// Vessel dataset.
    pub vessels: Vec<TriMesh>,
    /// Overall extent of the block.
    pub extent: Aabb,
}

/// Generate a tissue block deterministically from `cfg.seed`.
pub fn generate(cfg: &DatasetConfig) -> TissueBlock {
    assert!(cfg.spacing > 1.0, "spacing must exceed 1 for disjointness");
    let mut placement_rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);

    // ---- nuclei ----
    let max_r = cfg.nucleus.radius
        * (1.0 + cfg.nucleus.radius_jitter)
        * (1.0 + cfg.nucleus.lobe_amplitude)
        * (1.0 + cfg.nucleus.aniso);
    let cell = 2.0 * max_r * cfg.spacing;
    let side = (cfg.nuclei_count as f64).cbrt().ceil() as usize;
    let mut cells: Vec<(usize, usize, usize)> = (0..side)
        .flat_map(|x| (0..side).flat_map(move |y| (0..side).map(move |z| (x, y, z))))
        .collect();
    // Shuffle so truncation keeps the distribution uniform.
    for i in (1..cells.len()).rev() {
        let j = placement_rng.gen_range(0..=i);
        cells.swap(i, j);
    }
    cells.truncate(cfg.nuclei_count);

    let jitter_room = (cell - 2.0 * max_r) * 0.5;
    let mut nuclei_a = Vec::with_capacity(cfg.nuclei_count);
    let mut nuclei_b = Vec::with_capacity(cfg.nuclei_count);
    for (i, (x, y, z)) in cells.iter().enumerate() {
        let base = vec3(
            (*x as f64 + 0.5) * cell,
            (*y as f64 + 0.5) * cell,
            (*z as f64 + 0.5) * cell,
        );
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (0xA000_0000 + i as u64));
        let ca = base
            + vec3(
                (rng_a.gen::<f64>() - 0.5) * jitter_room,
                (rng_a.gen::<f64>() - 0.5) * jitter_room,
                (rng_a.gen::<f64>() - 0.5) * jitter_room,
            );
        nuclei_a.push(nucleus(&mut rng_a, &cfg.nucleus, ca));

        // Alternative segmentation: small positional and shape jitter.
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (0xB000_0000 + i as u64));
        let cb = ca
            + vec3(
                (rng_b.gen::<f64>() - 0.5) * 0.3 * cfg.nucleus.radius,
                (rng_b.gen::<f64>() - 0.5) * 0.3 * cfg.nucleus.radius,
                (rng_b.gen::<f64>() - 0.5) * 0.3 * cfg.nucleus.radius,
            );
        nuclei_b.push(nucleus(&mut rng_b, &cfg.nucleus, cb));
    }

    let nuclei_extent = cell * side as f64;

    // ---- vessels ----
    // Generate each vessel at the origin, then pack its AABB into a lane
    // beside (and through) the nuclei region.
    let mut vessels = Vec::with_capacity(cfg.vessel_count);
    let mut cursor_x = 0.0f64;
    for i in 0..cfg.vessel_count {
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (0xCE55E1 + i as u64 * 7919));
        let v = vessel(&mut rng, &cfg.vessel, Vec3::ZERO);
        let bb = v.mesh.aabb();
        // Shift so this vessel's box starts at cursor_x with a small gap,
        // vertically centred in the block.
        let gap = cfg.vessel.root_radius;
        let dx = cursor_x - bb.lo.x + gap;
        let dy = (nuclei_extent - bb.extent().y) * 0.5 - bb.lo.y;
        let dz = (nuclei_extent - bb.extent().z) * 0.5 - bb.lo.z;
        let mut m = v.mesh;
        m.translate(vec3(dx, dy, dz));
        cursor_x = m.aabb().hi.x + gap;
        vessels.push(m);
    }

    let mut extent = Aabb::from_corners(Vec3::ZERO, Vec3::splat(nuclei_extent));
    for v in &vessels {
        extent = extent.union(&v.aabb());
    }

    TissueBlock {
        nuclei_a,
        nuclei_b,
        vessels,
        extent,
    }
}

/// Check that no pair of meshes in `set` has intersecting AABBs — a cheap
/// sufficient condition for dataset disjointness used by tests and the
/// harness sanity checks.
pub fn aabbs_disjoint(set: &[TriMesh]) -> bool {
    let boxes: Vec<Aabb> = set.iter().map(TriMesh::aabb).collect();
    for i in 0..boxes.len() {
        for j in (i + 1)..boxes.len() {
            if boxes[i].intersects(&boxes[j]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DatasetConfig {
        DatasetConfig {
            nuclei_count: 60,
            vessel_count: 2,
            vessel: VesselConfig {
                levels: 2,
                grid: 24,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn counts_match_config() {
        let block = generate(&small_cfg());
        assert_eq!(block.nuclei_a.len(), 60);
        assert_eq!(block.nuclei_b.len(), 60);
        assert_eq!(block.vessels.len(), 2);
    }

    #[test]
    fn intra_dataset_objects_disjoint() {
        let block = generate(&small_cfg());
        assert!(
            aabbs_disjoint(&block.nuclei_a),
            "nuclei A must not intersect"
        );
        assert!(aabbs_disjoint(&block.vessels), "vessels must not intersect");
    }

    #[test]
    fn cross_dataset_nuclei_overlap() {
        let block = generate(&small_cfg());
        // Each B nucleus should overlap its A counterpart (the INT join's
        // raison d'être).
        let overlapping = block
            .nuclei_a
            .iter()
            .zip(&block.nuclei_b)
            .filter(|(a, b)| a.aabb().intersects(&b.aabb()))
            .count();
        assert!(
            overlapping * 10 >= block.nuclei_a.len() * 9,
            "only {overlapping}/{} A-B pairs overlap",
            block.nuclei_a.len()
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&small_cfg());
        let b = generate(&small_cfg());
        assert_eq!(a.nuclei_a[0], b.nuclei_a[0]);
        assert_eq!(a.vessels[0], b.vessels[0]);
        let mut other = small_cfg();
        other.seed ^= 1;
        let c = generate(&other);
        assert_ne!(a.nuclei_a[0], c.nuclei_a[0]);
    }

    #[test]
    fn extent_covers_everything() {
        let block = generate(&small_cfg());
        for m in block
            .nuclei_a
            .iter()
            .chain(&block.nuclei_b)
            .chain(&block.vessels)
        {
            let bb = m.aabb();
            assert!(block.extent.contains_box(&bb) || block.extent.union(&bb) == block.extent);
        }
    }
}
