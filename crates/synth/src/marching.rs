//! Marching tetrahedra: polygonise an SDF's zero level set into a closed,
//! consistently oriented triangle mesh.
//!
//! Each grid cube is split into the six positively-oriented tetrahedra
//! around its main diagonal; the decomposition is translation-consistent, so
//! shared cube faces are triangulated identically by both neighbours and the
//! output is watertight. Grid values within a small epsilon of zero are
//! nudged outside so every crossing lies strictly inside an edge, which
//! keeps vertices distinct and the surface manifold.

use crate::sdf::Sdf;
use tripro_geom::Vec3;
use tripro_mesh::TriMesh;

/// Sampling grid specification.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    /// Position of grid vertex (0, 0, 0).
    pub origin: Vec3,
    /// Cube edge length.
    pub cell: f64,
    /// Number of cubes per axis (vertices are `n + 1` per axis).
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl GridSpec {
    /// A grid covering `bb` (inflated by one cell of padding) with `n` cubes
    /// along its longest axis.
    pub fn covering(bb: &tripro_geom::Aabb, n: usize) -> Self {
        let ext = bb.extent();
        let cell = ext.max_component() / n as f64;
        let padded_lo = bb.lo - Vec3::splat(cell * 1.5);
        let padded_ext = ext + Vec3::splat(cell * 3.0);
        Self {
            origin: padded_lo,
            cell,
            nx: (padded_ext.x / cell).ceil() as usize,
            ny: (padded_ext.y / cell).ceil() as usize,
            nz: (padded_ext.z / cell).ceil() as usize,
        }
    }

    #[inline]
    fn vertex_pos(&self, x: usize, y: usize, z: usize) -> Vec3 {
        self.origin + Vec3::new(x as f64, y as f64, z as f64) * self.cell
    }

    #[inline]
    fn vertex_id(&self, x: usize, y: usize, z: usize) -> u64 {
        (x as u64)
            + (y as u64) * (self.nx as u64 + 1)
            + (z as u64) * (self.nx as u64 + 1) * (self.ny as u64 + 1)
    }
}

/// The six positively-oriented tetrahedra around the cube diagonal 0–7
/// (corner bit layout: bit0 = x, bit1 = y, bit2 = z).
const TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 3, 2, 7],
    [0, 2, 6, 7],
    [0, 6, 4, 7],
    [0, 4, 5, 7],
    [0, 5, 1, 7],
];

/// Extract the zero level set of `sdf` over `spec` as a closed triangle
/// mesh. Inside is `sdf < 0`; faces wind counter-clockwise seen from
/// outside. The surface must not touch the grid boundary (use
/// [`GridSpec::covering`]'s padding).
pub fn polygonize(sdf: &(impl Sdf + ?Sized), spec: &GridSpec) -> TriMesh {
    let (nx, ny, nz) = (spec.nx, spec.ny, spec.nz);
    // The nudge keeps every crossing a healthy distance from grid corners:
    // crossings from different edges around one corner then stay several
    // 16-bit quantiser steps apart, so snapping the mesh onto the PPVP grid
    // cannot collapse faces. 0.5% of a cell is invisible geometrically.
    let eps = 5e-3 * spec.cell;

    // Sample the grid, nudging near-zero samples outside.
    let mut values = vec![0.0f64; (nx + 1) * (ny + 1) * (nz + 1)];
    for z in 0..=nz {
        for y in 0..=ny {
            for x in 0..=nx {
                let v = sdf.eval(spec.vertex_pos(x, y, z));
                let v = if v.abs() < eps { eps } else { v };
                values[spec.vertex_id(x, y, z) as usize] = v;
            }
        }
    }

    let mut edge_vertex: std::collections::HashMap<(u64, u64), u32> =
        std::collections::HashMap::new();
    let mut vertices: Vec<Vec3> = Vec::new();
    let mut faces: Vec<[u32; 3]> = Vec::new();

    // Per-cube corner offsets by bit layout.
    let corner = |x: usize, y: usize, z: usize, c: usize| {
        (x + (c & 1), y + ((c >> 1) & 1), z + ((c >> 2) & 1))
    };

    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                // Gather the cube's 8 corners.
                let mut ids = [0u64; 8];
                let mut vals = [0.0f64; 8];
                let mut pos = [Vec3::ZERO; 8];
                let mut any_in = false;
                let mut any_out = false;
                for c in 0..8 {
                    let (cx, cy, cz) = corner(x, y, z, c);
                    let id = spec.vertex_id(cx, cy, cz);
                    ids[c] = id;
                    vals[c] = values[id as usize];
                    pos[c] = spec.vertex_pos(cx, cy, cz);
                    if vals[c] < 0.0 {
                        any_in = true;
                    } else {
                        any_out = true;
                    }
                }
                if !(any_in && any_out) {
                    continue; // cube entirely inside or outside
                }

                for tet in &TETS {
                    emit_tet(
                        [ids[tet[0]], ids[tet[1]], ids[tet[2]], ids[tet[3]]],
                        [vals[tet[0]], vals[tet[1]], vals[tet[2]], vals[tet[3]]],
                        [pos[tet[0]], pos[tet[1]], pos[tet[2]], pos[tet[3]]],
                        &mut edge_vertex,
                        &mut vertices,
                        &mut faces,
                    );
                }
            }
        }
    }

    TriMesh::new(vertices, faces)
}

/// Emit the surface fragment of one positively-oriented tetrahedron.
fn emit_tet(
    ids: [u64; 4],
    vals: [f64; 4],
    pos: [Vec3; 4],
    edge_vertex: &mut std::collections::HashMap<(u64, u64), u32>,
    vertices: &mut Vec<Vec3>,
    faces: &mut Vec<[u32; 3]>,
) {
    // Partition corner slots: inside first, tracking permutation parity.
    let mut order = [0usize, 1, 2, 3];
    let mut parity = 0usize;
    // Selection sort by "insideness" (inside = 0 key), counting swaps.
    for i in 0..4 {
        let mut best = i;
        for j in (i + 1)..4 {
            let kb = (vals[order[best]] >= 0.0) as u8;
            let kj = (vals[order[j]] >= 0.0) as u8;
            if kj < kb {
                best = j;
            }
        }
        if best != i {
            order.swap(i, best);
            parity ^= 1;
        }
    }
    let n_in = vals.iter().filter(|v| **v < 0.0).count();
    if n_in == 0 || n_in == 4 {
        return;
    }

    // Fix parity by swapping two same-class slots.
    if parity == 1 {
        match n_in {
            1 => order.swap(2, 3), // two outside corners
            2 => order.swap(2, 3), // two outside corners
            3 => order.swap(1, 2), // two inside corners
            _ => unreachable!(),
        }
    }

    let mut cross = |a: usize, b: usize| -> u32 {
        let (ia, ib) = (ids[a], ids[b]);
        let key = (ia.min(ib), ia.max(ib));
        *edge_vertex.entry(key).or_insert_with(|| {
            let (va, vb) = (vals[a], vals[b]);
            debug_assert!(va * vb < 0.0, "crossing requires opposite signs");
            let t = va / (va - vb);
            let p = pos[a].lerp(pos[b], t);
            vertices.push(p);
            (vertices.len() - 1) as u32
        })
    };

    match n_in {
        1 => {
            // (i | a, b, c) even: triangle (e_ia, e_ib, e_ic) faces outward.
            let [i, a, b, c] = order;
            let t = [cross(i, a), cross(i, b), cross(i, c)];
            faces.push(t);
        }
        3 => {
            // Outside-first view: rotate so the outside corner leads. The
            // permutation (o, i1, i2, i3) from (i1, i2, i3, o) is odd (three
            // transpositions), so compensate by swapping the last two.
            let [i1, i2, i3, o] = order;
            let (a, b, c) = (i1, i3, i2);
            let t = [cross(o, a), cross(o, c), cross(o, b)];
            faces.push(t);
        }
        2 => {
            // (i, j | k, l) even: quad (e_ik, e_il, e_jl, e_jk) faces outward.
            let [i, j, k, l] = order;
            let q = [cross(i, k), cross(i, l), cross(j, l), cross(j, k)];
            faces.push([q[0], q[1], q[2]]);
            faces.push([q[0], q[2], q[3]]);
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdf::{Capsule, Sphere};
    use tripro_geom::{vec3, Aabb};
    use tripro_mesh::quantize_mesh;

    #[test]
    fn tets_positively_oriented_and_cover_cube() {
        // Volume of the 6 tets must sum to the cube volume, each positive.
        let p = |c: usize| vec3((c & 1) as f64, ((c >> 1) & 1) as f64, ((c >> 2) & 1) as f64);
        let mut total = 0.0;
        for t in &TETS {
            let (a, b, c, d) = (p(t[0]), p(t[1]), p(t[2]), p(t[3]));
            let v6 = (b - a).cross(c - a).dot(d - a);
            assert!(v6 > 0.0, "tet {t:?} not positively oriented");
            total += v6 / 6.0;
        }
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sphere_polygonizes_closed_and_oriented() {
        let s = Sphere {
            center: vec3(0.0, 0.0, 0.0),
            radius: 1.0,
        };
        let bb = Aabb::from_corners(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0));
        let spec = GridSpec::covering(&bb, 16);
        let tm = polygonize(&s, &spec);
        assert!(tm.faces.len() > 100, "faces: {}", tm.faces.len());
        // Closed manifold after exact welding + quantisation.
        let (m, _) = quantize_mesh(&tm, 16).unwrap();
        m.validate_closed_manifold().unwrap();
        assert_eq!(m.euler_characteristic(), 2);
        // Volume close to 4π/3, positive (outward orientation).
        let v = tm.volume();
        let analytic = 4.0 / 3.0 * std::f64::consts::PI;
        assert!(v > 0.85 * analytic && v < 1.1 * analytic, "v={v}");
    }

    #[test]
    fn finer_grid_converges() {
        let s = Sphere {
            center: vec3(0.0, 0.0, 0.0),
            radius: 1.0,
        };
        let bb = Aabb::from_corners(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0));
        let coarse = polygonize(&s, &GridSpec::covering(&bb, 8)).volume();
        let fine = polygonize(&s, &GridSpec::covering(&bb, 24)).volume();
        let analytic = 4.0 / 3.0 * std::f64::consts::PI;
        assert!((fine - analytic).abs() < (coarse - analytic).abs());
    }

    #[test]
    fn capsule_polygonizes_manifold() {
        let c = Capsule {
            a: vec3(-2.0, 0.0, 0.0),
            b: vec3(2.0, 0.0, 0.0),
            radius: 0.8,
        };
        let bb = Aabb::from_corners(vec3(-2.8, -0.8, -0.8), vec3(2.8, 0.8, 0.8));
        let tm = polygonize(&c, &GridSpec::covering(&bb, 20));
        let (m, _) = quantize_mesh(&tm, 16).unwrap();
        m.validate_closed_manifold().unwrap();
        // Capsule volume: cylinder + sphere.
        let analytic = std::f64::consts::PI * 0.8f64.powi(2) * 4.0
            + 4.0 / 3.0 * std::f64::consts::PI * 0.8f64.powi(3);
        assert!((tm.volume() - analytic).abs() / analytic < 0.15);
    }

    #[test]
    fn empty_field_gives_empty_mesh() {
        let s = Sphere {
            center: vec3(100.0, 0.0, 0.0),
            radius: 0.5,
        };
        let bb = Aabb::from_corners(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0));
        let tm = polygonize(&s, &GridSpec::covering(&bb, 8));
        assert!(tm.faces.is_empty());
        assert!(tm.vertices.is_empty());
    }

    #[test]
    fn face_count_scales_with_grid() {
        let s = Sphere {
            center: vec3(0.0, 0.0, 0.0),
            radius: 1.0,
        };
        let bb = Aabb::from_corners(vec3(-1.0, -1.0, -1.0), vec3(1.0, 1.0, 1.0));
        let f8 = polygonize(&s, &GridSpec::covering(&bb, 8)).faces.len();
        let f16 = polygonize(&s, &GridSpec::covering(&bb, 16)).faces.len();
        // Surface triangle count grows ~quadratically with resolution.
        assert!(f16 > 3 * f8, "f8={f8} f16={f16}");
    }
}
