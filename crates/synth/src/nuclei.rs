//! Nucleus generator: near-convex blobs with ~300 surface faces, matching
//! the statistics the paper reports for its nuclei dataset (§6.2: regular
//! shapes, ~99% protruding vertices).
//!
//! Each nucleus is an icosphere whose vertices are radially modulated by a
//! few smooth low-amplitude Gaussian lobes, then anisotropically scaled.

use rand::Rng;
use tripro_geom::{vec3, Vec3};
use tripro_mesh::TriMesh;

/// Unit icosphere: icosahedron subdivided `subdivs` times, `20·4^s` faces.
pub fn icosphere(subdivs: usize) -> TriMesh {
    // Golden-ratio icosahedron.
    let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
    let mut vertices: Vec<Vec3> = vec![
        vec3(-1.0, phi, 0.0),
        vec3(1.0, phi, 0.0),
        vec3(-1.0, -phi, 0.0),
        vec3(1.0, -phi, 0.0),
        vec3(0.0, -1.0, phi),
        vec3(0.0, 1.0, phi),
        vec3(0.0, -1.0, -phi),
        vec3(0.0, 1.0, -phi),
        vec3(phi, 0.0, -1.0),
        vec3(phi, 0.0, 1.0),
        vec3(-phi, 0.0, -1.0),
        vec3(-phi, 0.0, 1.0),
    ]
    .into_iter()
    .map(|v| v.normalized().unwrap())
    .collect();
    let mut faces: Vec<[u32; 3]> = vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];

    for _ in 0..subdivs {
        let mut midpoints: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        let mut next = Vec::with_capacity(faces.len() * 4);
        for f in &faces {
            let [a, b, c] = *f;
            let mut mid = |x: u32, y: u32| {
                let key = (x.min(y), x.max(y));
                *midpoints.entry(key).or_insert_with(|| {
                    let m = ((vertices[x as usize] + vertices[y as usize]) * 0.5)
                        .normalized()
                        .unwrap();
                    vertices.push(m);
                    (vertices.len() - 1) as u32
                })
            };
            let ab = mid(a, b);
            let bc = mid(b, c);
            let ca = mid(c, a);
            next.push([a, ab, ca]);
            next.push([b, bc, ab]);
            next.push([c, ca, bc]);
            next.push([ab, bc, ca]);
        }
        faces = next;
    }
    TriMesh::new(vertices, faces)
}

/// Nucleus shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct NucleusConfig {
    /// Icosphere subdivisions: 2 ⇒ 320 faces ≈ the paper's 300-face average.
    pub subdivs: usize,
    /// Mean radius.
    pub radius: f64,
    /// Radius jitter fraction (uniform in `[1-j, 1+j]`).
    pub radius_jitter: f64,
    /// Number of Gaussian surface lobes.
    pub lobes: usize,
    /// Maximum lobe amplitude as a fraction of the radius. Keep small
    /// (≤ ~0.15) to stay near-convex like real nuclei.
    pub lobe_amplitude: f64,
    /// Anisotropic scale jitter per axis.
    pub aniso: f64,
}

impl Default for NucleusConfig {
    fn default() -> Self {
        Self {
            subdivs: 2,
            radius: 1.0,
            radius_jitter: 0.25,
            lobes: 4,
            lobe_amplitude: 0.12,
            aniso: 0.2,
        }
    }
}

/// Generate one nucleus centred at `center`.
pub fn nucleus(rng: &mut impl Rng, cfg: &NucleusConfig, center: Vec3) -> TriMesh {
    let mut tm = icosphere(cfg.subdivs);
    let r = cfg.radius * (1.0 + cfg.radius_jitter * (rng.gen::<f64>() * 2.0 - 1.0));

    // Random smooth lobes: direction + width + amplitude each.
    let lobes: Vec<(Vec3, f64, f64)> = (0..cfg.lobes)
        .map(|_| {
            let d = random_unit(rng);
            let width = 0.3 + 0.5 * rng.gen::<f64>();
            let amp = cfg.lobe_amplitude * (rng.gen::<f64>() * 2.0 - 1.0);
            (d, width, amp)
        })
        .collect();
    let scale = vec3(
        1.0 + cfg.aniso * (rng.gen::<f64>() * 2.0 - 1.0),
        1.0 + cfg.aniso * (rng.gen::<f64>() * 2.0 - 1.0),
        1.0 + cfg.aniso * (rng.gen::<f64>() * 2.0 - 1.0),
    );

    for v in &mut tm.vertices {
        let n = *v; // unit normal == position on the unit icosphere
        let mut rad = r;
        for (d, width, amp) in &lobes {
            let t = (n.dot(*d) - 1.0) / width; // 0 at the lobe centre
            rad += r * amp * (-t * t).exp() * 0.5 * (1.0 + n.dot(*d));
        }
        *v = center + vec3(n.x * scale.x, n.y * scale.y, n.z * scale.z) * rad;
    }
    tm
}

/// Random point on the unit sphere.
pub fn random_unit(rng: &mut impl Rng) -> Vec3 {
    loop {
        let v = vec3(
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
        );
        let n2 = v.norm2();
        if n2 > 1e-4 && n2 <= 1.0 {
            return v / n2.sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tripro_mesh::{protruding_fraction_of, quantize_mesh};

    #[test]
    fn icosphere_face_counts() {
        assert_eq!(icosphere(0).faces.len(), 20);
        assert_eq!(icosphere(1).faces.len(), 80);
        assert_eq!(icosphere(2).faces.len(), 320);
    }

    #[test]
    fn icosphere_is_closed_manifold_unit_sphere() {
        let s = icosphere(2);
        let (m, _) = quantize_mesh(&s, 16).unwrap();
        m.validate_closed_manifold().unwrap();
        assert_eq!(m.euler_characteristic(), 2);
        let analytic = 4.0 / 3.0 * std::f64::consts::PI;
        let v = s.volume();
        assert!(v > 0.95 * analytic && v < analytic, "v={v}");
        for p in &s.vertices {
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nucleus_is_valid_and_nucleus_like() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for i in 0..10 {
            let n = nucleus(
                &mut rng,
                &NucleusConfig::default(),
                vec3(i as f64 * 5.0, 0.0, 0.0),
            );
            assert_eq!(n.faces.len(), 320);
            let (m, _) = quantize_mesh(&n, 16).unwrap();
            m.validate_closed_manifold().unwrap();
            assert!(n.volume() > 0.0, "outward orientation preserved");
            // Paper §6.2: ~99% of nuclei vertices are protruding.
            let f = protruding_fraction_of(&n, 16);
            assert!(f > 0.9, "nucleus {i}: protruding fraction {f}");
        }
    }

    #[test]
    fn nucleus_determinism_by_seed() {
        let mk = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            nucleus(&mut rng, &NucleusConfig::default(), Vec3::ZERO)
        };
        assert_eq!(mk(42), mk(42));
        assert_ne!(mk(42), mk(43));
    }

    #[test]
    fn nucleus_centers_and_sizes_vary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = NucleusConfig::default();
        let a = nucleus(&mut rng, &cfg, vec3(0.0, 0.0, 0.0));
        let b = nucleus(&mut rng, &cfg, vec3(10.0, 0.0, 0.0));
        assert!(a.aabb().center().dist(Vec3::ZERO) < 0.5);
        assert!(b.aabb().center().dist(vec3(10.0, 0.0, 0.0)) < 0.5);
        assert!(
            (a.volume() - b.volume()).abs() > 1e-6,
            "shapes should differ"
        );
    }

    #[test]
    fn random_unit_is_unit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!((random_unit(&mut rng).norm() - 1.0).abs() < 1e-12);
        }
    }
}
