//! Vessel generator: bifurcated tube structures with thousands to tens of
//! thousands of surface faces, standing in for the paper's reconstructed
//! blood vessels (§6.2: ~30k faces and ~5 bifurcations per vessel, ~75%
//! protruding vertices because branch joints recess).
//!
//! A random binary branching skeleton is grown from a root; the vessel
//! surface is the smooth union of tapered capsules along the skeleton
//! segments, polygonised by marching tetrahedra.

use crate::marching::{polygonize, GridSpec};
use crate::nuclei::random_unit;
use crate::sdf::{Cone, Sdf, SmoothUnion};
use rand::Rng;
use tripro_geom::{Aabb, Vec3};
use tripro_mesh::TriMesh;

/// Vessel shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct VesselConfig {
    /// Trunk radius.
    pub root_radius: f64,
    /// Trunk segment length.
    pub segment_len: f64,
    /// Bifurcation levels (5 matches the paper's average).
    pub levels: usize,
    /// Radius decay per level (Murray-like thinning).
    pub radius_decay: f64,
    /// Branching angle spread in radians.
    pub spread: f64,
    /// Marching-tetrahedra cubes along the longest axis; controls the face
    /// count (≈ quadratic in this value).
    pub grid: usize,
    /// Smooth-union blending radius as a fraction of the root radius.
    pub blend: f64,
}

impl Default for VesselConfig {
    fn default() -> Self {
        Self {
            root_radius: 1.0,
            segment_len: 5.0,
            levels: 5,
            radius_decay: 0.78,
            spread: 0.55,
            grid: 48,
            blend: 0.4,
        }
    }
}

/// One skeleton segment with radii at both ends.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonSegment {
    pub a: Vec3,
    pub b: Vec3,
    pub ra: f64,
    pub rb: f64,
}

/// A vessel: the generated surface plus its skeleton (the skeleton also
/// drives the partition-based acceleration, paper §5.1).
#[derive(Debug, Clone)]
pub struct Vessel {
    pub mesh: TriMesh,
    pub skeleton: Vec<SkeletonSegment>,
}

/// Grow a random bifurcating skeleton from `root` towards `dir`.
pub fn grow_skeleton(
    rng: &mut impl Rng,
    cfg: &VesselConfig,
    root: Vec3,
    dir: Vec3,
) -> Vec<SkeletonSegment> {
    let mut segments = Vec::new();
    // (start, direction, radius, level)
    let mut stack = vec![(root, dir, cfg.root_radius, 0usize)];
    while let Some((start, dir, radius, level)) = stack.pop() {
        if level > cfg.levels {
            continue;
        }
        let len =
            cfg.segment_len * cfg.radius_decay.powi(level as i32) * (0.8 + 0.4 * rng.gen::<f64>());
        let end = start + dir * len;
        let r_end = radius * cfg.radius_decay;
        segments.push(SkeletonSegment {
            a: start,
            b: end,
            ra: radius,
            rb: r_end,
        });
        if level == cfg.levels {
            continue;
        }
        // Bifurcate: two children deflected to either side of `dir`.
        let axis = perpendicular(rng, dir);
        for sign in [-1.0, 1.0] {
            let angle = cfg.spread * (0.7 + 0.6 * rng.gen::<f64>());
            let child = rotate(dir, axis, sign * angle);
            stack.push((end, child, r_end, level + 1));
        }
    }
    segments
}

fn perpendicular(rng: &mut impl Rng, d: Vec3) -> Vec3 {
    loop {
        let r = random_unit(rng);
        let p = r - d * r.dot(d);
        if let Some(u) = p.normalized() {
            return u;
        }
    }
}

/// Rodrigues rotation of `v` around unit `axis` by `angle`.
fn rotate(v: Vec3, axis: Vec3, angle: f64) -> Vec3 {
    let (s, c) = angle.sin_cos();
    v * c + axis.cross(v) * s + axis * (axis.dot(v) * (1.0 - c))
}

/// Generate one vessel rooted at `root`.
pub fn vessel(rng: &mut impl Rng, cfg: &VesselConfig, root: Vec3) -> Vessel {
    let dir = {
        // Mostly "up" with some tilt, like a vessel crossing tissue.
        let mut d = random_unit(rng);
        d.z = d.z.abs() + 1.0;
        d.normalized().unwrap()
    };
    let skeleton = grow_skeleton(rng, cfg, root, dir);
    let field = SmoothUnion {
        parts: skeleton
            .iter()
            .map(|s| Cone {
                a: s.a,
                b: s.b,
                ra: s.ra,
                rb: s.rb,
            })
            .collect(),
        k: cfg.blend * cfg.root_radius,
    };
    // Bounding box of the skeleton inflated by the max radius.
    let mut bb = Aabb::EMPTY;
    for s in &skeleton {
        bb.expand(s.a);
        bb.expand(s.b);
    }
    let bb = bb.inflate(cfg.root_radius * (1.0 + cfg.blend));
    let mesh = polygonize(&field, &GridSpec::covering(&bb, cfg.grid));
    Vessel { mesh, skeleton }
}

/// Evaluate the vessel SDF at a point (used by tests / placement).
pub fn vessel_sdf(skeleton: &[SkeletonSegment], blend: f64, p: Vec3) -> f64 {
    let field = SmoothUnion {
        parts: skeleton
            .iter()
            .map(|s| Cone {
                a: s.a,
                b: s.b,
                ra: s.ra,
                rb: s.rb,
            })
            .collect(),
        k: blend,
    };
    field.eval(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tripro_geom::vec3;
    use tripro_mesh::{protruding_fraction_of, quantize_mesh};

    fn small_cfg() -> VesselConfig {
        VesselConfig {
            levels: 3,
            grid: 32,
            ..Default::default()
        }
    }

    #[test]
    fn skeleton_bifurcates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let cfg = small_cfg();
        let segs = grow_skeleton(&mut rng, &cfg, Vec3::ZERO, vec3(0.0, 0.0, 1.0));
        // Binary tree with `levels+1` segment generations: 2^(L+1) - 1.
        assert_eq!(segs.len(), (1 << (cfg.levels + 1)) - 1);
        // Radii decay along the tree.
        let rmin = segs.iter().map(|s| s.rb).fold(f64::INFINITY, f64::min);
        assert!(rmin < cfg.root_radius * 0.5);
    }

    #[test]
    fn vessel_is_closed_manifold_with_many_faces() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let v = vessel(&mut rng, &small_cfg(), Vec3::ZERO);
        assert!(v.mesh.faces.len() > 1500, "faces: {}", v.mesh.faces.len());
        let (m, _) = quantize_mesh(&v.mesh, 16).unwrap();
        m.validate_closed_manifold().unwrap();
        assert!(v.mesh.volume() > 0.0);
    }

    #[test]
    fn vessel_has_recessing_vertices_unlike_nuclei() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let v = vessel(&mut rng, &small_cfg(), Vec3::ZERO);
        let f = protruding_fraction_of(&v.mesh, 16);
        // §6.2: ~75% protruding for vessels — bifurcation joints recess.
        // Cylindrical bodies are flat-ish so the exact number varies; demand
        // "clearly less than a nucleus but still majority".
        assert!(f > 0.3 && f < 0.999, "protruding fraction {f}");
    }

    #[test]
    fn grid_controls_face_count() {
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let coarse = vessel(
            &mut rng1,
            &VesselConfig {
                levels: 2,
                grid: 24,
                ..Default::default()
            },
            Vec3::ZERO,
        );
        let fine = vessel(
            &mut rng2,
            &VesselConfig {
                levels: 2,
                grid: 48,
                ..Default::default()
            },
            Vec3::ZERO,
        );
        assert!(fine.mesh.faces.len() > 2 * coarse.mesh.faces.len());
    }

    #[test]
    fn sdf_negative_on_skeleton() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = small_cfg();
        let segs = grow_skeleton(&mut rng, &cfg, Vec3::ZERO, vec3(0.0, 0.0, 1.0));
        for s in &segs {
            let mid = (s.a + s.b) * 0.5;
            assert!(vessel_sdf(&segs, 0.4, mid) < 0.0);
        }
    }

    #[test]
    fn rotation_preserves_length_and_angle() {
        let v = vec3(0.0, 0.0, 1.0);
        let axis = vec3(1.0, 0.0, 0.0);
        let r = rotate(v, axis, std::f64::consts::FRAC_PI_2);
        assert!((r - vec3(0.0, -1.0, 0.0)).norm() < 1e-12);
        assert!((rotate(v, axis, 0.3).norm() - 1.0).abs() < 1e-12);
    }
}
