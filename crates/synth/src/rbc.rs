//! Red-blood-cell generator: biconcave discs.
//!
//! A third object family between the paper's two extremes: RBCs are
//! compact like nuclei but carry two deep concave dimples, so their
//! protruding-vertex fraction falls between the near-convex nuclei (~99%)
//! and the heavily recessed vessels — useful for stressing PPVP on shapes
//! where pruning stalls locally.

use crate::marching::{polygonize, GridSpec};
use crate::nuclei::random_unit;
use crate::sdf::{smooth_min, Sdf, Sphere};
use rand::Rng;
use tripro_geom::{Aabb, Vec3};
use tripro_mesh::TriMesh;

/// Biconcave disc field: a flattened ball with two dimple spheres smoothly
/// carved out of its top and bottom.
pub struct BiconcaveDisc {
    pub center: Vec3,
    /// Disc radius in the equatorial plane.
    pub radius: f64,
    /// Half-thickness at the rim.
    pub thickness: f64,
    /// Dimple depth as a fraction of the thickness (0 = none, ~0.9 = deep).
    pub dimple: f64,
}

impl Sdf for BiconcaveDisc {
    fn eval(&self, p: Vec3) -> f64 {
        let d = p - self.center;
        // Flattened ball: scale z so the ball becomes an oblate spheroid.
        // (Approximate SDF — adequate for polygonisation.)
        let q = Vec3::new(d.x, d.y, d.z * self.radius / self.thickness);
        let body = q.norm() - self.radius;
        // Dimples: spheres above and below the centre, smooth-subtracted.
        let dr = self.radius * 0.9;
        let dz = self.thickness * (2.0 - self.dimple);
        let top = Sphere {
            center: self.center + Vec3::new(0.0, 0.0, dz + dr * 0.2),
            radius: dr,
        };
        let bot = Sphere {
            center: self.center - Vec3::new(0.0, 0.0, dz + dr * 0.2),
            radius: dr,
        };
        // Smooth subtraction: max(a, -b) via -smin(-a, b).
        let k = self.thickness * 0.3;
        let carved_top = -smooth_min(-body, top.eval(p), k);
        -smooth_min(-carved_top, bot.eval(p), k)
    }
}

/// RBC shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct RbcConfig {
    pub radius: f64,
    pub thickness: f64,
    pub dimple: f64,
    pub radius_jitter: f64,
    /// Marching-tetrahedra cubes along the longest axis.
    pub grid: usize,
}

impl Default for RbcConfig {
    fn default() -> Self {
        Self {
            radius: 1.0,
            thickness: 0.35,
            dimple: 0.75,
            radius_jitter: 0.15,
            grid: 28,
        }
    }
}

/// Generate one red blood cell centred at `center` with a random tilt.
pub fn rbc(rng: &mut impl Rng, cfg: &RbcConfig, center: Vec3) -> TriMesh {
    let radius = cfg.radius * (1.0 + cfg.radius_jitter * (rng.gen::<f64>() * 2.0 - 1.0));
    let field = BiconcaveDisc {
        center: Vec3::ZERO,
        radius,
        thickness: cfg.thickness * radius / cfg.radius,
        dimple: cfg.dimple,
    };
    let bb = Aabb::from_corners(
        Vec3::new(-radius, -radius, -radius),
        Vec3::new(radius, radius, radius),
    );
    let mut tm = polygonize(&field, &GridSpec::covering(&bb, cfg.grid));
    // Random rotation (tilt the disc axis), then translate into place.
    let axis = random_unit(rng);
    let angle = rng.gen::<f64>() * std::f64::consts::TAU;
    let (s, c) = angle.sin_cos();
    for v in &mut tm.vertices {
        let r = *v * c + axis.cross(*v) * s + axis * (axis.dot(*v) * (1.0 - c));
        *v = r + center;
    }
    tm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tripro_geom::vec3;
    use tripro_mesh::{protruding_fraction_of, quantize_mesh};

    #[test]
    fn rbc_is_closed_manifold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        for i in 0..5 {
            let cell = rbc(
                &mut rng,
                &RbcConfig::default(),
                vec3(i as f64 * 4.0, 0.0, 0.0),
            );
            assert!(cell.faces.len() > 300, "faces: {}", cell.faces.len());
            let (m, _) = quantize_mesh(&cell, 16).unwrap();
            m.validate_closed_manifold().unwrap();
            assert!(cell.volume() > 0.0);
        }
    }

    #[test]
    fn rbc_is_flatter_than_a_ball_and_dimpled() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let cfg = RbcConfig {
            radius_jitter: 0.0,
            ..Default::default()
        };
        let field = BiconcaveDisc {
            center: Vec3::ZERO,
            radius: cfg.radius,
            thickness: cfg.thickness,
            dimple: cfg.dimple,
        };
        // Inside at the rim plane, outside at the pole region centre
        // (the dimple carves the middle thin).
        assert!(field.eval(vec3(0.8, 0.0, 0.0)) < 0.0, "rim interior");
        assert!(field.eval(vec3(0.0, 0.0, 0.9)) > 0.0, "well above the disc");
        let centre_thickness = field.eval(vec3(0.0, 0.0, cfg.thickness * 0.8));
        assert!(centre_thickness > 0.0, "dimple thins the centre");
        // A disc's volume is far below the bounding ball's.
        let cell = rbc(&mut rng, &cfg, Vec3::ZERO);
        let ball = 4.0 / 3.0 * std::f64::consts::PI * cfg.radius.powi(3);
        assert!(cell.volume() < 0.4 * ball);
    }

    #[test]
    fn rbc_protruding_fraction_between_nucleus_and_vessel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let cell = rbc(&mut rng, &RbcConfig::default(), Vec3::ZERO);
        let f = protruding_fraction_of(&cell, 16);
        // Dimples recess, rim protrudes: expect a middling fraction.
        assert!(f > 0.3 && f < 0.98, "fraction {f}");
    }

    #[test]
    fn rbc_encodes_with_ppvp() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let cell = rbc(&mut rng, &RbcConfig::default(), vec3(2.0, 2.0, 2.0));
        let cm = tripro_mesh::encode(&cell, &tripro_mesh::EncoderConfig::default()).unwrap();
        assert!(cm.max_lod() >= 1);
        let mut dec = cm.decoder().unwrap();
        dec.decode_to(cm.max_lod()).unwrap();
        assert_eq!(dec.mesh().face_count(), cell.faces.len());
    }

    #[test]
    fn deterministic_by_seed() {
        let mk = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            rbc(&mut rng, &RbcConfig::default(), Vec3::ZERO)
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }
}
