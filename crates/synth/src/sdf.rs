//! Signed distance fields used to sculpt synthetic 3D objects.
//!
//! The paper's vessel dataset comes from proprietary tissue reconstructions;
//! we substitute implicit surfaces — smooth unions of capsules along a
//! bifurcating skeleton — polygonised by marching tetrahedra
//! (see `DESIGN.md` §2 for the substitution rationale).

use tripro_geom::Vec3;

/// A signed distance field: negative inside, positive outside.
pub trait Sdf {
    /// Signed distance (or a conservative approximation of it) at `p`.
    fn eval(&self, p: Vec3) -> f64;
}

/// Sphere of radius `r` centred at `c`.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    pub center: Vec3,
    pub radius: f64,
}

impl Sdf for Sphere {
    #[inline]
    fn eval(&self, p: Vec3) -> f64 {
        p.dist(self.center) - self.radius
    }
}

/// Capsule: all points within `radius` of segment `[a, b]`.
#[derive(Debug, Clone, Copy)]
pub struct Capsule {
    pub a: Vec3,
    pub b: Vec3,
    pub radius: f64,
}

impl Sdf for Capsule {
    #[inline]
    fn eval(&self, p: Vec3) -> f64 {
        let ab = self.b - self.a;
        let denom = ab.norm2();
        let t = if denom > 0.0 {
            ((p - self.a).dot(ab) / denom).clamp(0.0, 1.0)
        } else {
            0.0
        };
        p.dist(self.a + ab * t) - self.radius
    }
}

/// Tapered capsule: the radius blends linearly from `ra` at `a` to `rb` at
/// `b` — vessels thin out along their branches.
#[derive(Debug, Clone, Copy)]
pub struct Cone {
    pub a: Vec3,
    pub b: Vec3,
    pub ra: f64,
    pub rb: f64,
}

impl Sdf for Cone {
    #[inline]
    fn eval(&self, p: Vec3) -> f64 {
        let ab = self.b - self.a;
        let denom = ab.norm2();
        let t = if denom > 0.0 {
            ((p - self.a).dot(ab) / denom).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let r = self.ra + (self.rb - self.ra) * t;
        p.dist(self.a + ab * t) - r
    }
}

/// Smooth union of a set of fields with blending width `k` (polynomial
/// smooth-min). `k = 0` degrades to a hard union.
pub struct SmoothUnion<S> {
    pub parts: Vec<S>,
    pub k: f64,
}

impl<S: Sdf> Sdf for SmoothUnion<S> {
    fn eval(&self, p: Vec3) -> f64 {
        let mut d = f64::INFINITY;
        for s in &self.parts {
            let e = s.eval(p);
            d = if self.k > 0.0 && d.is_finite() {
                smooth_min(d, e, self.k)
            } else {
                d.min(e)
            };
        }
        d
    }
}

/// Polynomial smooth minimum (Inigo Quilez's formulation).
#[inline]
pub fn smooth_min(a: f64, b: f64, k: f64) -> f64 {
    let h = (0.5 + 0.5 * (b - a) / k).clamp(0.0, 1.0);
    b + (a - b) * h - k * h * (1.0 - h)
}

/// Boxed trait-object union for heterogeneous scenes.
pub struct Union(pub Vec<Box<dyn Sdf + Send + Sync>>);

impl Sdf for Union {
    fn eval(&self, p: Vec3) -> f64 {
        self.0
            .iter()
            .map(|s| s.eval(p))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tripro_geom::vec3;

    #[test]
    fn sphere_signs() {
        let s = Sphere {
            center: vec3(1.0, 0.0, 0.0),
            radius: 2.0,
        };
        assert!(s.eval(vec3(1.0, 0.0, 0.0)) < 0.0);
        assert_eq!(s.eval(vec3(3.0, 0.0, 0.0)), 0.0);
        assert!(s.eval(vec3(5.0, 0.0, 0.0)) > 0.0);
        assert!((s.eval(vec3(5.0, 0.0, 0.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capsule_signs() {
        let c = Capsule {
            a: vec3(0.0, 0.0, 0.0),
            b: vec3(4.0, 0.0, 0.0),
            radius: 1.0,
        };
        assert!(c.eval(vec3(2.0, 0.0, 0.0)) < 0.0);
        assert!((c.eval(vec3(2.0, 3.0, 0.0)) - 2.0).abs() < 1e-12);
        // Beyond an endpoint the cap is spherical.
        assert!((c.eval(vec3(6.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
        // Degenerate capsule is a sphere.
        let pt = Capsule {
            a: vec3(1.0, 1.0, 1.0),
            b: vec3(1.0, 1.0, 1.0),
            radius: 0.5,
        };
        assert!((pt.eval(vec3(1.0, 1.0, 2.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cone_tapers() {
        let c = Cone {
            a: vec3(0.0, 0.0, 0.0),
            b: vec3(10.0, 0.0, 0.0),
            ra: 2.0,
            rb: 1.0,
        };
        assert!((c.eval(vec3(0.0, 5.0, 0.0)) - 3.0).abs() < 1e-12);
        assert!((c.eval(vec3(10.0, 5.0, 0.0)) - 4.0).abs() < 1e-12);
        assert!((c.eval(vec3(5.0, 5.0, 0.0)) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn smooth_min_properties() {
        // Bounded above by the hard min and converges to it for distant values.
        for (a, b) in [(0.0, 5.0), (3.0, 3.1), (-2.0, 1.0)] {
            let s = smooth_min(a, b, 0.5);
            assert!(s <= a.min(b) + 1e-12);
        }
        assert!((smooth_min(0.0, 100.0, 0.5) - 0.0).abs() < 1e-9);
        // Symmetry.
        assert!((smooth_min(1.0, 2.0, 0.7) - smooth_min(2.0, 1.0, 0.7)).abs() < 1e-12);
    }

    #[test]
    fn smooth_union_blends() {
        let u = SmoothUnion {
            parts: vec![
                Sphere {
                    center: vec3(-1.0, 0.0, 0.0),
                    radius: 1.0,
                },
                Sphere {
                    center: vec3(1.0, 0.0, 0.0),
                    radius: 1.0,
                },
            ],
            k: 0.5,
        };
        // Midpoint between two touching spheres: hard union is 0, smooth
        // union pulls it negative (fills the crease).
        assert!(u.eval(vec3(0.0, 0.0, 0.0)) < 0.0);
        // Far away it behaves like the distance to the nearest sphere.
        assert!((u.eval(vec3(10.0, 0.0, 0.0)) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn union_takes_min() {
        let u = Union(vec![
            Box::new(Sphere {
                center: vec3(0.0, 0.0, 0.0),
                radius: 1.0,
            }),
            Box::new(Sphere {
                center: vec3(10.0, 0.0, 0.0),
                radius: 2.0,
            }),
        ]);
        assert!((u.eval(vec3(5.0, 0.0, 0.0)) - 3.0).abs() < 1e-12);
    }
}
