//! Exact integer lattice points and orientation predicates.
//!
//! 3DPro snaps all mesh coordinates to a uniform quantisation grid before
//! compression (see `tripro-mesh`). Orientation tests — in particular the
//! *protruding vertex* classification that underpins the PPVP subset
//! guarantee — are then evaluated on the integer grid coordinates with i128
//! intermediate precision, which is exact for coordinates up to ±2³⁰ per axis.

use crate::vec3::{vec3, Vec3};
use std::ops::{Add, Neg, Sub};

/// Maximum absolute per-axis coordinate for which the exact predicates are
/// guaranteed overflow-free.
///
/// `orient3d` computes a 3×3 determinant of coordinate differences. With
/// |coordinate| ≤ 2³⁰, each difference fits in 31 bits, each 2×2 minor in
/// ~63 bits, and the full determinant in ~96 bits — comfortably inside i128.
pub const MAX_EXACT_COORD: i64 = 1 << 30;

/// A point on the integer quantisation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct IVec3 {
    pub x: i64,
    pub y: i64,
    pub z: i64,
}

/// Convenience constructor, equivalent to [`IVec3::new`].
#[inline]
pub const fn ivec3(x: i64, y: i64, z: i64) -> IVec3 {
    IVec3 { x, y, z }
}

impl IVec3 {
    pub const ZERO: IVec3 = ivec3(0, 0, 0);

    #[inline]
    pub const fn new(x: i64, y: i64, z: i64) -> Self {
        Self { x, y, z }
    }

    /// Convert to floating point (exact for grid coordinates < 2⁵³).
    #[inline]
    pub fn to_vec3(self) -> Vec3 {
        vec3(self.x as f64, self.y as f64, self.z as f64)
    }

    /// Exact dot product with i128 accumulation.
    #[inline]
    pub fn dot(self, rhs: IVec3) -> i128 {
        self.x as i128 * rhs.x as i128
            + self.y as i128 * rhs.y as i128
            + self.z as i128 * rhs.z as i128
    }

    /// Exact cross product. The result components fit in i128; for inputs
    /// bounded by [`MAX_EXACT_COORD`] they also fit in i64, but the wider
    /// type keeps follow-up dot products exact.
    #[inline]
    pub fn cross_wide(self, rhs: IVec3) -> (i128, i128, i128) {
        (
            self.y as i128 * rhs.z as i128 - self.z as i128 * rhs.y as i128,
            self.z as i128 * rhs.x as i128 - self.x as i128 * rhs.z as i128,
            self.x as i128 * rhs.y as i128 - self.y as i128 * rhs.x as i128,
        )
    }

    /// `true` when every axis is within the exact-predicate bound.
    #[inline]
    #[must_use]
    pub fn within_exact_bounds(self) -> bool {
        self.x.abs() <= MAX_EXACT_COORD
            && self.y.abs() <= MAX_EXACT_COORD
            && self.z.abs() <= MAX_EXACT_COORD
    }
}

impl Add for IVec3 {
    type Output = IVec3;
    #[inline]
    fn add(self, rhs: IVec3) -> IVec3 {
        ivec3(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for IVec3 {
    type Output = IVec3;
    #[inline]
    fn sub(self, rhs: IVec3) -> IVec3 {
        ivec3(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Neg for IVec3 {
    type Output = IVec3;
    #[inline]
    fn neg(self) -> IVec3 {
        ivec3(-self.x, -self.y, -self.z)
    }
}

/// Which side of an oriented plane a point lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Strictly on the positive (outer, normal-pointing) side.
    Positive,
    /// Exactly on the plane.
    Coplanar,
    /// Strictly on the negative (inner) side.
    Negative,
}

/// Exact sign of the determinant
/// `det [b-a; c-a; d-a]`, i.e. the signed volume (×6) of tetrahedron `abcd`.
///
/// Returns [`Orientation::Positive`] when `d` lies on the side of plane
/// `abc` that its counter-clockwise normal (right-hand rule over `a→b→c`)
/// points towards.
///
/// Exact (no rounding) for all coordinates bounded by [`MAX_EXACT_COORD`].
pub fn orient3d(a: IVec3, b: IVec3, c: IVec3, d: IVec3) -> Orientation {
    let ab = b - a;
    let ac = c - a;
    let ad = d - a;
    let (nx, ny, nz) = ab.cross_wide(ac);
    let det = nx * ad.x as i128 + ny * ad.y as i128 + nz * ad.z as i128;
    match det.cmp(&0) {
        std::cmp::Ordering::Greater => Orientation::Positive,
        std::cmp::Ordering::Equal => Orientation::Coplanar,
        std::cmp::Ordering::Less => Orientation::Negative,
    }
}

/// `true` when triangle `abc` is degenerate (its vertices are collinear or
/// coincident), evaluated exactly.
#[must_use]
pub fn is_degenerate_tri(a: IVec3, b: IVec3, c: IVec3) -> bool {
    let (nx, ny, nz) = (b - a).cross_wide(c - a);
    nx == 0 && ny == 0 && nz == 0
}

/// Exact doubled-area-squared of triangle `abc` (squared norm of the cross
/// product). Useful for comparing triangle sizes without rounding.
pub fn doubled_area2(a: IVec3, b: IVec3, c: IVec3) -> i128 {
    let (nx, ny, nz) = (b - a).cross_wide(c - a);
    // Components fit in ~63 bits for bounded inputs, so squares fit in i128.
    nx * nx + ny * ny + nz * nz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basic() {
        // abc counter-clockwise in the z=0 plane, normal towards +z.
        let a = ivec3(0, 0, 0);
        let b = ivec3(1, 0, 0);
        let c = ivec3(0, 1, 0);
        assert_eq!(orient3d(a, b, c, ivec3(0, 0, 1)), Orientation::Positive);
        assert_eq!(orient3d(a, b, c, ivec3(0, 0, -1)), Orientation::Negative);
        assert_eq!(orient3d(a, b, c, ivec3(5, 5, 0)), Orientation::Coplanar);
    }

    #[test]
    fn orientation_antisymmetry() {
        let a = ivec3(3, 1, 4);
        let b = ivec3(1, 5, 9);
        let c = ivec3(2, 6, 5);
        let d = ivec3(3, 5, 8);
        let o1 = orient3d(a, b, c, d);
        let o2 = orient3d(b, a, c, d);
        match (o1, o2) {
            (Orientation::Positive, Orientation::Negative)
            | (Orientation::Negative, Orientation::Positive)
            | (Orientation::Coplanar, Orientation::Coplanar) => {}
            other => panic!("swap of two rows must flip the sign, got {other:?}"),
        }
    }

    #[test]
    fn orientation_exact_at_extremes() {
        // A configuration that would suffer catastrophic cancellation in f64.
        let m = MAX_EXACT_COORD;
        let a = ivec3(m, m, m);
        let b = ivec3(m - 1, m, m);
        let c = ivec3(m, m - 1, m);
        // ab=(-1,0,0), ac=(0,-1,0) ⇒ normal (0,0,1); d one step below the
        // plane z=m is on the negative side.
        assert_eq!(orient3d(a, b, c, ivec3(m, m, m - 1)), Orientation::Negative);
        assert_eq!(
            orient3d(a, b, c, ivec3(m - 5, m - 7, m)),
            Orientation::Coplanar
        );
    }

    #[test]
    fn degenerate_detection() {
        assert!(is_degenerate_tri(
            ivec3(0, 0, 0),
            ivec3(1, 1, 1),
            ivec3(2, 2, 2)
        ));
        assert!(is_degenerate_tri(
            ivec3(4, 4, 4),
            ivec3(4, 4, 4),
            ivec3(9, 0, 0)
        ));
        assert!(!is_degenerate_tri(
            ivec3(0, 0, 0),
            ivec3(1, 0, 0),
            ivec3(0, 1, 0)
        ));
    }

    #[test]
    fn area_matches_float() {
        let a = ivec3(0, 0, 0);
        let b = ivec3(4, 0, 0);
        let c = ivec3(0, 3, 0);
        // |cross| = 12 => doubled_area2 = 144.
        assert_eq!(doubled_area2(a, b, c), 144);
    }

    #[test]
    fn vector_ops() {
        let a = ivec3(1, 2, 3);
        let b = ivec3(10, 20, 30);
        assert_eq!(a + b, ivec3(11, 22, 33));
        assert_eq!(b - a, ivec3(9, 18, 27));
        assert_eq!(-a, ivec3(-1, -2, -3));
        assert_eq!(a.dot(b), 140);
        assert_eq!(a.to_vec3(), vec3(1.0, 2.0, 3.0));
        assert!(a.within_exact_bounds());
        assert!(!ivec3(MAX_EXACT_COORD + 1, 0, 0).within_exact_bounds());
    }
}
