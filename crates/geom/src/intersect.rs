//! Intersection predicates: triangle–triangle (Möller's interval test),
//! ray–triangle (Möller–Trumbore), segment–triangle, and AABB–triangle
//! (separating-axis, Akenine-Möller).
//!
//! The triangle–triangle test is the hot kernel of the intersection join:
//! two polyhedra intersect iff any face pair intersects or one contains the
//! other (paper §4.1).

use crate::eps::is_exactly_zero;
use crate::tri::Triangle;
use crate::vec3::Vec3;

/// Tolerance for classifying a vertex as lying on the other triangle's
/// plane. Scaled by the magnitude of the inputs at use sites.
const PLANE_EPS: f64 = 1e-12;

/// Result of casting a ray against a triangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RayHit {
    /// The ray cleanly crosses the triangle interior at parameter `t ≥ 0`.
    Hit(f64),
    /// No intersection.
    Miss,
    /// The crossing is numerically ambiguous (grazes an edge/vertex or the
    /// ray is (near-)parallel to the plane while touching it). Callers doing
    /// parity counting should re-cast with a different direction.
    Ambiguous,
}

/// Möller–Trumbore ray/triangle intersection.
///
/// `origin + t * dir` for `t ≥ 0`. Distinguishes clean interior hits from
/// ambiguous grazes so that point-in-polyhedron parity counting can re-cast.
pub fn ray_triangle(origin: Vec3, dir: Vec3, tri: &Triangle) -> RayHit {
    let e1 = tri.b - tri.a;
    let e2 = tri.c - tri.a;
    let p = dir.cross(e2);
    let det = e1.dot(p);
    let scale = e1.norm() * e2.norm() * dir.norm();
    if det.abs() <= PLANE_EPS * scale.max(1e-300) {
        // Parallel (or degenerate triangle). If the origin is far from the
        // plane this is a clean miss; otherwise ambiguous.
        let n = e1.cross(e2);
        let d = (origin - tri.a).dot(n);
        if is_exactly_zero(n.norm2())
            || d.abs() <= PLANE_EPS * n.norm() * (origin - tri.a).norm().max(1.0)
        {
            return RayHit::Ambiguous;
        }
        return RayHit::Miss;
    }
    let inv_det = 1.0 / det;
    let s = origin - tri.a;
    let u = s.dot(p) * inv_det;
    let q = s.cross(e1);
    let v = dir.dot(q) * inv_det;
    let t = e2.dot(q) * inv_det;

    let edge_eps = 1e-10;
    if u < -edge_eps || v < -edge_eps || u + v > 1.0 + edge_eps || t < -edge_eps {
        return RayHit::Miss;
    }
    if u < edge_eps || v < edge_eps || u + v > 1.0 - edge_eps || t < edge_eps {
        return RayHit::Ambiguous;
    }
    RayHit::Hit(t)
}

/// `true` when segment `[p, q]` intersects the (closed) triangle.
#[must_use]
pub fn segment_triangle(p: Vec3, q: Vec3, tri: &Triangle) -> bool {
    let dir = q - p;
    match ray_triangle(p, dir, tri) {
        RayHit::Hit(t) => t <= 1.0,
        RayHit::Miss => false,
        RayHit::Ambiguous => {
            // Fall back to the symmetric tri-tri machinery by treating the
            // segment as a degenerate sliver; cheap conservative answer via
            // distance: the segment touches the triangle iff their distance
            // is ~0. Avoided here to keep the dependency direction clean —
            // instead test both endpoints and the plane crossing explicitly.
            let n = tri.scaled_normal();
            if is_exactly_zero(n.norm2()) {
                return false;
            }
            let dp = (p - tri.a).dot(n);
            let dq = (q - tri.a).dot(n);
            if dp * dq > 0.0 {
                return false;
            }
            // Crossing point (or either endpoint if coplanar).
            let t = if (dp - dq).abs() > 0.0 {
                dp / (dp - dq)
            } else {
                0.5
            };
            let x = p.lerp(q, t.clamp(0.0, 1.0));
            point_in_triangle_coplanar(x, tri, 1e-9)
        }
    }
}

/// `true` when point `x`, assumed (near-)coplanar with the triangle,
/// falls inside it (inclusive of the boundary within `eps`).
#[must_use]
pub fn point_in_triangle_coplanar(x: Vec3, tri: &Triangle, eps: f64) -> bool {
    let n = tri.scaled_normal();
    if is_exactly_zero(n.norm2()) {
        return false;
    }
    for (s, e) in tri.edges() {
        // x must be on the inner side of every edge.
        let side = (e - s).cross(x - s).dot(n);
        if side < -eps * n.norm2().max(1.0) {
            return false;
        }
    }
    true
}

/// Triangle–triangle intersection test (Möller 1997 interval method, with a
/// coplanar fallback). Closed test: touching counts as intersecting.
#[must_use]
pub fn tri_tri_intersect(t1: &Triangle, t2: &Triangle) -> bool {
    // Plane of t2.
    let n2 = t2.scaled_normal();
    let d2 = -n2.dot(t2.a);
    let scale2 = n2.norm().max(1e-300);
    let du = [n2.dot(t1.a) + d2, n2.dot(t1.b) + d2, n2.dot(t1.c) + d2];
    let eps1 = PLANE_EPS
        * scale2
        * t1.vertices()
            .iter()
            .map(|v| v.norm())
            .fold(1.0f64, f64::max);
    let du = [
        clamp_small(du[0], eps1),
        clamp_small(du[1], eps1),
        clamp_small(du[2], eps1),
    ];
    if du[0] > 0.0 && du[1] > 0.0 && du[2] > 0.0 {
        return false;
    }
    if du[0] < 0.0 && du[1] < 0.0 && du[2] < 0.0 {
        return false;
    }

    // Plane of t1.
    let n1 = t1.scaled_normal();
    let d1 = -n1.dot(t1.a);
    let scale1 = n1.norm().max(1e-300);
    let dv = [n1.dot(t2.a) + d1, n1.dot(t2.b) + d1, n1.dot(t2.c) + d1];
    let eps2 = PLANE_EPS
        * scale1
        * t2.vertices()
            .iter()
            .map(|v| v.norm())
            .fold(1.0f64, f64::max);
    let dv = [
        clamp_small(dv[0], eps2),
        clamp_small(dv[1], eps2),
        clamp_small(dv[2], eps2),
    ];
    if dv[0] > 0.0 && dv[1] > 0.0 && dv[2] > 0.0 {
        return false;
    }
    if dv[0] < 0.0 && dv[1] < 0.0 && dv[2] < 0.0 {
        return false;
    }

    // Intersection line direction.
    let d = n1.cross(n2);
    if d.norm2() <= (scale1 * scale2 * PLANE_EPS) * (scale1 * scale2 * PLANE_EPS) {
        // Coplanar (parallel planes at zero offset — offsets were checked
        // above via the du/dv sign tests).
        return coplanar_tri_tri(t1, t2, n1);
    }

    // Project onto the dominant axis of D.
    let axis = d.dominant_axis();
    let up = [t1.a[axis], t1.b[axis], t1.c[axis]];
    let vp = [t2.a[axis], t2.b[axis], t2.c[axis]];

    let i1 = interval(up, du);
    let i2 = interval(vp, dv);
    match (i1, i2) {
        (Some((a0, a1)), Some((b0, b1))) => a0.max(b0) <= a1.min(b1),
        // A triangle that never crosses the other's plane (after the sign
        // checks this means it lies exactly in it) — treat via coplanar path.
        _ => coplanar_tri_tri(t1, t2, n1),
    }
}

#[inline]
fn clamp_small(v: f64, eps: f64) -> f64 {
    if v.abs() <= eps {
        0.0
    } else {
        v
    }
}

/// Interval of the intersection line (projected onto an axis) covered by a
/// triangle with projected vertices `p` and signed plane distances `d`.
fn interval(p: [f64; 3], d: [f64; 3]) -> Option<(f64, f64)> {
    // Find the vertex that is alone on one side (or on the plane).
    let mut ts: Vec<f64> = Vec::with_capacity(3);
    for i in 0..3 {
        for j in (i + 1)..3 {
            let (di, dj) = (d[i], d[j]);
            if di * dj < 0.0 {
                // Edge crosses the plane.
                let t = p[i] + (p[j] - p[i]) * di / (di - dj);
                ts.push(t);
            }
        }
    }
    // Vertices exactly on the plane contribute their own projection.
    for i in 0..3 {
        if is_exactly_zero(d[i]) {
            ts.push(p[i]);
        }
    }
    if ts.is_empty() {
        return None;
    }
    let lo = ts.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Some((lo, hi))
}

/// 2D overlap test for coplanar triangles: any edge pair intersects, or one
/// triangle contains a vertex of the other.
fn coplanar_tri_tri(t1: &Triangle, t2: &Triangle, n: Vec3) -> bool {
    let axis = n.dominant_axis();
    let (i, j) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let p1: Vec<(f64, f64)> = t1.vertices().iter().map(|v| (v[i], v[j])).collect();
    let p2: Vec<(f64, f64)> = t2.vertices().iter().map(|v| (v[i], v[j])).collect();

    for a in 0..3 {
        for b in 0..3 {
            if seg_seg_2d(p1[a], p1[(a + 1) % 3], p2[b], p2[(b + 1) % 3]) {
                return true;
            }
        }
    }
    point_in_tri_2d(p1[0], &p2) || point_in_tri_2d(p2[0], &p1)
}

fn orient2d(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

fn seg_seg_2d(a: (f64, f64), b: (f64, f64), c: (f64, f64), d: (f64, f64)) -> bool {
    let d1 = orient2d(c, d, a);
    let d2 = orient2d(c, d, b);
    let d3 = orient2d(a, b, c);
    let d4 = orient2d(a, b, d);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    let on = |o: f64, p: (f64, f64), q: (f64, f64), r: (f64, f64)| {
        is_exactly_zero(o)
            && r.0 >= p.0.min(q.0)
            && r.0 <= p.0.max(q.0)
            && r.1 >= p.1.min(q.1)
            && r.1 <= p.1.max(q.1)
    };
    on(d1, c, d, a) || on(d2, c, d, b) || on(d3, a, b, c) || on(d4, a, b, d)
}

fn point_in_tri_2d(p: (f64, f64), t: &[(f64, f64)]) -> bool {
    let d1 = orient2d(t[0], t[1], p);
    let d2 = orient2d(t[1], t[2], p);
    let d3 = orient2d(t[2], t[0], p);
    let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
    let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
    !(has_neg && has_pos)
}

/// AABB–triangle overlap via the separating-axis theorem
/// (Akenine-Möller's 13-axis test). Closed test.
#[must_use]
pub fn aabb_triangle(bb: &crate::aabb::Aabb, tri: &Triangle) -> bool {
    if bb.is_empty() {
        return false;
    }
    let c = bb.center();
    let h = bb.extent() * 0.5;
    let v0 = tri.a - c;
    let v1 = tri.b - c;
    let v2 = tri.c - c;
    let e0 = v1 - v0;
    let e1 = v2 - v1;
    let e2 = v0 - v2;

    // 9 cross-product axes.
    let axes = [
        Vec3::X.cross(e0),
        Vec3::X.cross(e1),
        Vec3::X.cross(e2),
        Vec3::Y.cross(e0),
        Vec3::Y.cross(e1),
        Vec3::Y.cross(e2),
        Vec3::Z.cross(e0),
        Vec3::Z.cross(e1),
        Vec3::Z.cross(e2),
    ];
    for ax in axes {
        let p0 = v0.dot(ax);
        let p1 = v1.dot(ax);
        let p2 = v2.dot(ax);
        let r = h.x * ax.x.abs() + h.y * ax.y.abs() + h.z * ax.z.abs();
        let lo = p0.min(p1).min(p2);
        let hi = p0.max(p1).max(p2);
        if lo > r || hi < -r {
            return false;
        }
    }

    // 3 box face normals.
    for axis in 0..3 {
        let lo = v0[axis].min(v1[axis]).min(v2[axis]);
        let hi = v0[axis].max(v1[axis]).max(v2[axis]);
        if lo > h[axis] || hi < -h[axis] {
            return false;
        }
    }

    // Triangle plane normal.
    let n = e0.cross(e1);
    let r = h.x * n.x.abs() + h.y * n.y.abs() + h.z * n.z.abs();
    let d = v0.dot(n);
    d.abs() <= r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aabb::Aabb;
    use crate::vec3::vec3;

    fn xy_tri() -> Triangle {
        Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(2.0, 0.0, 0.0),
            vec3(0.0, 2.0, 0.0),
        )
    }

    #[test]
    fn ray_hits_interior() {
        let t = xy_tri();
        match ray_triangle(vec3(0.5, 0.5, -1.0), vec3(0.0, 0.0, 1.0), &t) {
            RayHit::Hit(tv) => assert!((tv - 1.0).abs() < 1e-12),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn ray_misses() {
        let t = xy_tri();
        assert_eq!(
            ray_triangle(vec3(5.0, 5.0, -1.0), vec3(0.0, 0.0, 1.0), &t),
            RayHit::Miss
        );
        // Pointing away.
        assert_eq!(
            ray_triangle(vec3(0.5, 0.5, -1.0), vec3(0.0, 0.0, -1.0), &t),
            RayHit::Miss
        );
    }

    #[test]
    fn ray_graze_is_ambiguous() {
        let t = xy_tri();
        // Straight through the edge a-b.
        match ray_triangle(vec3(1.0, 0.0, -1.0), vec3(0.0, 0.0, 1.0), &t) {
            RayHit::Ambiguous => {}
            other => panic!("expected ambiguous, got {other:?}"),
        }
        // Parallel ray in the triangle plane.
        match ray_triangle(vec3(-1.0, 0.5, 0.0), vec3(1.0, 0.0, 0.0), &t) {
            RayHit::Ambiguous => {}
            other => panic!("expected ambiguous, got {other:?}"),
        }
    }

    #[test]
    fn segment_crossing() {
        let t = xy_tri();
        assert!(segment_triangle(
            vec3(0.5, 0.5, -1.0),
            vec3(0.5, 0.5, 1.0),
            &t
        ));
        assert!(!segment_triangle(
            vec3(0.5, 0.5, 0.5),
            vec3(0.5, 0.5, 1.0),
            &t
        ));
        assert!(!segment_triangle(
            vec3(5.0, 5.0, -1.0),
            vec3(5.0, 5.0, 1.0),
            &t
        ));
    }

    #[test]
    fn tri_tri_crossing_planes() {
        let t1 = xy_tri();
        // Vertical triangle crossing t1's interior.
        let t2 = Triangle::new(
            vec3(0.5, 0.5, -1.0),
            vec3(0.5, 0.5, 1.0),
            vec3(1.5, 0.5, 0.0),
        );
        assert!(tri_tri_intersect(&t1, &t2));
        assert!(tri_tri_intersect(&t2, &t1), "test must be symmetric");
    }

    #[test]
    fn tri_tri_separated() {
        let t1 = xy_tri();
        let t2 = Triangle::new(
            vec3(0.0, 0.0, 1.0),
            vec3(2.0, 0.0, 1.0),
            vec3(0.0, 2.0, 1.0),
        );
        assert!(!tri_tri_intersect(&t1, &t2));
        // Same plane, far away.
        let t3 = Triangle::new(
            vec3(10.0, 10.0, 0.0),
            vec3(12.0, 10.0, 0.0),
            vec3(10.0, 12.0, 0.0),
        );
        assert!(!tri_tri_intersect(&t1, &t3));
    }

    #[test]
    fn tri_tri_coplanar_overlap() {
        let t1 = xy_tri();
        let t2 = Triangle::new(
            vec3(0.5, 0.5, 0.0),
            vec3(2.5, 0.5, 0.0),
            vec3(0.5, 2.5, 0.0),
        );
        assert!(tri_tri_intersect(&t1, &t2));
        // Coplanar containment (t3 strictly inside t1): no edge crossings.
        let t3 = Triangle::new(
            vec3(0.2, 0.2, 0.0),
            vec3(0.6, 0.2, 0.0),
            vec3(0.2, 0.6, 0.0),
        );
        assert!(tri_tri_intersect(&t1, &t3));
    }

    #[test]
    fn tri_tri_vertex_touch() {
        let t1 = xy_tri();
        // Shares exactly the vertex (2,0,0), otherwise disjoint, non-coplanar.
        let t2 = Triangle::new(
            vec3(2.0, 0.0, 0.0),
            vec3(3.0, 0.0, 1.0),
            vec3(3.0, 1.0, 1.0),
        );
        assert!(tri_tri_intersect(&t1, &t2));
    }

    #[test]
    fn tri_tri_plane_crossed_but_outside() {
        let t1 = xy_tri();
        // Crosses t1's plane but far outside t1's extent.
        let t2 = Triangle::new(
            vec3(10.0, 10.0, -1.0),
            vec3(10.0, 11.0, 1.0),
            vec3(11.0, 10.0, 1.0),
        );
        assert!(!tri_tri_intersect(&t1, &t2));
    }

    #[test]
    fn aabb_tri_tests() {
        let bb = Aabb::from_corners(Vec3::ZERO, Vec3::ONE);
        assert!(aabb_triangle(&bb, &xy_tri()));
        // Far away.
        let t = Triangle::new(
            vec3(5.0, 5.0, 5.0),
            vec3(6.0, 5.0, 5.0),
            vec3(5.0, 6.0, 5.0),
        );
        assert!(!aabb_triangle(&bb, &t));
        // Large triangle slicing through the box without any vertex inside.
        let t = Triangle::new(
            vec3(-10.0, -10.0, 0.5),
            vec3(20.0, -10.0, 0.5),
            vec3(0.0, 20.0, 0.5),
        );
        assert!(aabb_triangle(&bb, &t));
        // Triangle plane near box but separated along the normal.
        let t = Triangle::new(
            vec3(-10.0, -10.0, 1.5),
            vec3(20.0, -10.0, 1.5),
            vec3(0.0, 20.0, 1.5),
        );
        assert!(!aabb_triangle(&bb, &t));
        assert!(!aabb_triangle(&Aabb::EMPTY, &xy_tri()));
    }

    #[test]
    fn point_in_triangle_coplanar_cases() {
        let t = xy_tri();
        assert!(point_in_triangle_coplanar(vec3(0.5, 0.5, 0.0), &t, 1e-12));
        assert!(point_in_triangle_coplanar(vec3(0.0, 0.0, 0.0), &t, 1e-12));
        assert!(!point_in_triangle_coplanar(vec3(2.0, 2.0, 0.0), &t, 1e-12));
    }
}
