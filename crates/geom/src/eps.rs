//! Tolerance-aware float comparison — the only module in the workspace
//! allowed to compare floats with `==`/`!=` (enforced by `cargo xtask lint`,
//! rule `float_eq`; see `docs/invariants.md`).
//!
//! Geometry predicates fall into two camps, and conflating them is a classic
//! source of silent wrong answers:
//!
//! * **Exact-zero tests** on quantities that are zero *by construction* —
//!   e.g. a cross product of parallel vectors, a plane distance of a point
//!   lying on the plane's defining triangle. These want bit-exact `== 0.0`
//!   ([`is_exactly_zero`]) and tolerating an epsilon would misclassify
//!   nearly-degenerate inputs.
//! * **Approximate comparisons** on accumulated arithmetic, where a relative
//!   + absolute tolerance ([`approx_eq`], [`approx_zero`]) absorbs rounding.
//!
//! By funnelling both through named helpers, every call site documents which
//! camp it is in, and the lint rule makes sure nobody writes a naked `==`.

/// Default absolute tolerance for [`approx_zero`] / [`approx_eq`] on
/// coordinates in world units. Chosen to sit well below the quantisation
/// grid step used by the coder while staying far above f64 rounding noise.
pub const ABS_EPS: f64 = 1e-9;

/// Default relative tolerance for [`approx_eq`].
pub const REL_EPS: f64 = 1e-12;

/// Bit-exact zero test (`x == 0.0`, matching both `+0.0` and `-0.0`).
///
/// Use when the value is zero by construction (degenerate cross product,
/// sentinel, unset accumulator) — NOT for "small after arithmetic", which is
/// [`approx_zero`]'s job.
#[inline]
#[must_use]
pub fn is_exactly_zero(x: f64) -> bool {
    x == 0.0
}

/// Bit-exact equality (`a == b`). NaN is equal to nothing, like `==`.
///
/// Use for sentinel/cached values that are copied, never recomputed.
#[inline]
#[must_use]
pub fn is_exactly(a: f64, b: f64) -> bool {
    a == b
}

/// `|x| <= ABS_EPS` — absolute-tolerance zero test for accumulated
/// arithmetic. Rejects NaN.
#[inline]
#[must_use]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= ABS_EPS
}

/// `|x| <= eps` with a caller-chosen tolerance. Rejects NaN.
#[inline]
#[must_use]
pub fn approx_zero_eps(x: f64, eps: f64) -> bool {
    x.abs() <= eps
}

/// Mixed absolute/relative equality: true when
/// `|a-b| <= max(ABS_EPS, REL_EPS * max(|a|,|b|))`. Rejects NaN; infinities
/// are equal only to themselves.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    if !a.is_finite() || !b.is_finite() {
        // An infinite scale would make the relative threshold infinite and
        // accept any pair; equal infinities are the only non-finite match.
        return a == b;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs());
    diff <= ABS_EPS.max(REL_EPS * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_matches_both_signs() {
        assert!(is_exactly_zero(0.0));
        assert!(is_exactly_zero(-0.0));
        assert!(!is_exactly_zero(f64::MIN_POSITIVE));
        assert!(!is_exactly_zero(f64::NAN));
    }

    #[test]
    fn exact_eq_is_bitwise_semantics() {
        assert!(is_exactly(1.5, 1.5));
        assert!(!is_exactly(1.5, 1.5 + f64::EPSILON * 2.0));
        assert!(!is_exactly(f64::NAN, f64::NAN));
    }

    #[test]
    fn approx_zero_absorbs_rounding() {
        let residue = 0.1 + 0.2 - 0.3; // ~5.5e-17
        assert!(!is_exactly_zero(residue));
        assert!(approx_zero(residue));
        assert!(!approx_zero(1e-6));
        assert!(!approx_zero(f64::NAN));
    }

    #[test]
    fn approx_eq_scales_with_magnitude() {
        assert!(approx_eq(1.0e15, 1.0e15 + 1.0)); // within relative tol
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY));
        assert!(!approx_eq(f64::NAN, f64::NAN));
    }

    #[test]
    fn custom_eps() {
        assert!(approx_zero_eps(0.5, 1.0));
        assert!(!approx_zero_eps(0.5, 0.1));
    }
}
