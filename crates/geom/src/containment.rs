//! Point-in-polyhedron testing over triangle soups by ray-parity counting.
//!
//! Used by the intersection query's containment fallback (paper Alg. 1,
//! steps 8–12): if no face pair intersects, one object may still contain the
//! other, which is decided by testing a single vertex.

use crate::intersect::{ray_triangle, RayHit};
use crate::tri::Triangle;
use crate::vec3::{vec3, Vec3};

/// Deterministic pseudo-random direction sequence for ray re-casting.
/// (A tiny SplitMix64 so `tripro-geom` stays dependency-free.)
fn direction(seed: u64) -> Vec3 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = || {
        z = z.wrapping_add(0x9E3779B97F4A7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    };
    loop {
        let u = (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let v = (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let w = (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        let d = vec3(u, v, w);
        if d.norm2() > 0.01 {
            if let Some(n) = d.normalized() {
                return n;
            }
        }
    }
}

/// `true` when `p` is inside the closed surface described by `faces`
/// (boundary points may be classified either way).
///
/// Casts a ray and counts crossings; on any ambiguous graze it re-casts in a
/// new pseudo-random direction (up to 32 attempts, then falls back to the
/// last parity, which for closed well-formed meshes is unreachable in
/// practice).
#[must_use]
pub fn point_in_mesh(p: Vec3, faces: &[Triangle]) -> bool {
    let mut seed = 0xD3500D5EEDu64;
    for _attempt in 0..32 {
        let dir = direction(seed);
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut crossings = 0usize;
        let mut ambiguous = false;
        for f in faces {
            match ray_triangle(p, dir, f) {
                RayHit::Hit(_) => crossings += 1,
                RayHit::Miss => {}
                RayHit::Ambiguous => {
                    ambiguous = true;
                    break;
                }
            }
        }
        if !ambiguous {
            return crossings % 2 == 1;
        }
    }
    false
}

/// Signed volume of the solid bounded by `faces` (positive when faces are
/// counter-clockwise / outward-oriented), via the divergence theorem.
pub fn mesh_volume(faces: &[Triangle]) -> f64 {
    let mut v6 = 0.0;
    for f in faces {
        v6 += f.a.dot(f.b.cross(f.c));
    }
    v6 / 6.0
}

/// Total surface area.
pub fn mesh_surface_area(faces: &[Triangle]) -> f64 {
    faces.iter().map(Triangle::area).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit cube as 12 outward-oriented triangles.
    pub fn cube() -> Vec<Triangle> {
        let v = [
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(1.0, 1.0, 0.0),
            vec3(0.0, 1.0, 0.0),
            vec3(0.0, 0.0, 1.0),
            vec3(1.0, 0.0, 1.0),
            vec3(1.0, 1.0, 1.0),
            vec3(0.0, 1.0, 1.0),
        ];
        let quads = [
            // bottom (z=0, normal -z), top (z=1, normal +z)
            [0, 3, 2, 1],
            [4, 5, 6, 7],
            // front (y=0, normal -y), back (y=1)
            [0, 1, 5, 4],
            [2, 3, 7, 6],
            // left (x=0), right (x=1)
            [0, 4, 7, 3],
            [1, 2, 6, 5],
        ];
        let mut out = Vec::new();
        for q in quads {
            out.push(Triangle::new(v[q[0]], v[q[1]], v[q[2]]));
            out.push(Triangle::new(v[q[0]], v[q[2]], v[q[3]]));
        }
        out
    }

    #[test]
    fn cube_volume_and_area() {
        let c = cube();
        assert!((mesh_volume(&c) - 1.0).abs() < 1e-12);
        assert!((mesh_surface_area(&c) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn inside_outside() {
        let c = cube();
        assert!(point_in_mesh(vec3(0.5, 0.5, 0.5), &c));
        assert!(point_in_mesh(vec3(0.1, 0.9, 0.2), &c));
        assert!(!point_in_mesh(vec3(1.5, 0.5, 0.5), &c));
        assert!(!point_in_mesh(vec3(-0.1, 0.5, 0.5), &c));
        assert!(!point_in_mesh(vec3(0.5, 0.5, 2.0), &c));
    }

    #[test]
    fn near_boundary_consistency() {
        let c = cube();
        assert!(point_in_mesh(vec3(0.5, 0.5, 1e-6), &c));
        assert!(!point_in_mesh(vec3(0.5, 0.5, -1e-6), &c));
    }

    #[test]
    fn direction_is_unit_and_varied() {
        let d1 = direction(1);
        let d2 = direction(2);
        assert!((d1.norm() - 1.0).abs() < 1e-12);
        assert!((d2.norm() - 1.0).abs() < 1e-12);
        assert!((d1 - d2).norm() > 1e-6);
    }
}
