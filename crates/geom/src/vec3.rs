//! Double-precision 3D vectors and points.
//!
//! `Vec3` is the floating-point workhorse used by all distance and
//! intersection computations. Exact predicates on quantised coordinates use
//! [`crate::ivec::IVec3`] instead.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A 3D vector (or point) with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// Convenience constructor, equivalent to [`Vec3::new`].
#[inline]
pub const fn vec3(x: f64, y: f64, z: f64) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    pub const ZERO: Vec3 = vec3(0.0, 0.0, 0.0);
    pub const ONE: Vec3 = vec3(1.0, 1.0, 1.0);
    pub const X: Vec3 = vec3(1.0, 0.0, 0.0);
    pub const Y: Vec3 = vec3(0.0, 1.0, 0.0);
    pub const Z: Vec3 = vec3(0.0, 0.0, 1.0);

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        vec3(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist2(self, rhs: Vec3) -> f64 {
        (self - rhs).norm2()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, rhs: Vec3) -> f64 {
        self.dist2(rhs).sqrt()
    }

    /// Unit vector in the same direction. Returns `None` for (near-)zero
    /// vectors, where normalisation is meaningless.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        vec3(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        vec3(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        vec3(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Linear interpolation: `self` at `t = 0`, `rhs` at `t = 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Index (0, 1 or 2) of the component with the largest absolute value.
    #[inline]
    pub fn dominant_axis(self) -> usize {
        let a = self.abs();
        if a.x >= a.y && a.x >= a.z {
            0
        } else if a.y >= a.z {
            1
        } else {
            2
        }
    }

    /// `true` when all components are finite.
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array, handy for per-axis loops.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Build from an array.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        vec3(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // tripro_lint::allow(no_panic): Index's contract is total; an out-of-range axis is a caller bug, not a runtime condition
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        vec3(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        vec3(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        vec3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = vec3(1.0, 2.0, 3.0);
        let b = vec3(4.0, 5.0, 6.0);
        assert_eq!(a + b, vec3(5.0, 7.0, 9.0));
        assert_eq!(b - a, vec3(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, vec3(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, vec3(0.5, 1.0, 1.5));
        assert_eq!(-a, vec3(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = vec3(1.0, 0.0, 0.0);
        let b = vec3(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), vec3(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), vec3(0.0, 0.0, -1.0));
        // Cross product is perpendicular to its operands.
        let u = vec3(1.5, -2.0, 0.25);
        let v = vec3(0.5, 3.0, -1.0);
        let c = u.cross(v);
        assert!(c.dot(u).abs() < 1e-12);
        assert!(c.dot(v).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distances() {
        let a = vec3(3.0, 4.0, 0.0);
        assert_eq!(a.norm2(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(Vec3::ZERO.dist(a), 5.0);
        assert_eq!(a.dist2(Vec3::ZERO), 25.0);
    }

    #[test]
    fn normalized() {
        let a = vec3(0.0, 0.0, 2.0);
        assert_eq!(a.normalized(), Some(vec3(0.0, 0.0, 1.0)));
        assert_eq!(Vec3::ZERO.normalized(), None);
    }

    #[test]
    fn component_ops() {
        let a = vec3(1.0, 5.0, -3.0);
        let b = vec3(2.0, 4.0, -1.0);
        assert_eq!(a.min(b), vec3(1.0, 4.0, -3.0));
        assert_eq!(a.max(b), vec3(2.0, 5.0, -1.0));
        assert_eq!(a.abs(), vec3(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), -3.0);
        assert_eq!(a.dominant_axis(), 1);
        assert_eq!(vec3(-9.0, 1.0, 2.0).dominant_axis(), 0);
        assert_eq!(vec3(0.0, 1.0, 2.0).dominant_axis(), 2);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = vec3(0.0, 0.0, 0.0);
        let b = vec3(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), vec3(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing() {
        let a = vec3(7.0, 8.0, 9.0);
        assert_eq!(a[0], 7.0);
        assert_eq!(a[1], 8.0);
        assert_eq!(a[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = vec3(0.0, 0.0, 0.0)[3];
    }

    #[test]
    fn array_roundtrip() {
        let a = vec3(1.0, -2.0, 3.5);
        assert_eq!(Vec3::from_array(a.to_array()), a);
    }
}
