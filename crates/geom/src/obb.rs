//! Oriented bounding boxes via principal component analysis.
//!
//! Used by the partition-based acceleration (paper §5.1) to approximate
//! skeleton-grouped sub-objects more tightly than axis-aligned boxes.

use crate::aabb::Aabb;
use crate::vec3::{vec3, Vec3};

/// A symmetric 3×3 matrix stored as its 6 unique entries.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Sym3 {
    pub xx: f64,
    pub xy: f64,
    pub xz: f64,
    pub yy: f64,
    pub yz: f64,
    pub zz: f64,
}

impl Sym3 {
    /// Covariance matrix of a point set around its mean.
    pub fn covariance(points: &[Vec3]) -> (Vec3, Sym3) {
        if points.is_empty() {
            return (Vec3::ZERO, Sym3::default());
        }
        let n = points.len() as f64;
        let mean = points.iter().fold(Vec3::ZERO, |s, p| s + *p) / n;
        let mut c = Sym3::default();
        for p in points {
            let d = *p - mean;
            c.xx += d.x * d.x;
            c.xy += d.x * d.y;
            c.xz += d.x * d.z;
            c.yy += d.y * d.y;
            c.yz += d.y * d.z;
            c.zz += d.z * d.z;
        }
        c.xx /= n;
        c.xy /= n;
        c.xz /= n;
        c.yy /= n;
        c.yz /= n;
        c.zz /= n;
        (mean, c)
    }

    fn to_array(self) -> [[f64; 3]; 3] {
        [
            [self.xx, self.xy, self.xz],
            [self.xy, self.yy, self.yz],
            [self.xz, self.yz, self.zz],
        ]
    }

    /// Eigen-decomposition by cyclic Jacobi rotations. Returns the three
    /// orthonormal eigenvectors (columns), largest eigenvalue first.
    pub fn eigenvectors(self) -> [Vec3; 3] {
        let mut a = self.to_array();
        // v accumulates the rotations; starts as identity.
        let mut v = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];

        for _sweep in 0..32 {
            // Largest off-diagonal element.
            let off = a[0][1].abs().max(a[0][2].abs()).max(a[1][2].abs());
            if off < 1e-14 {
                break;
            }
            for &(p, q) in &[(0usize, 1usize), (0, 2), (1, 2)] {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p,q,theta): A = Jᵀ A J.
                let mut a2 = a;
                for k in 0..3 {
                    a2[p][k] = c * a[p][k] - s * a[q][k];
                    a2[q][k] = s * a[p][k] + c * a[q][k];
                }
                let mut a3 = a2;
                for k in 0..3 {
                    a3[k][p] = c * a2[k][p] - s * a2[k][q];
                    a3[k][q] = s * a2[k][p] + c * a2[k][q];
                }
                a = a3;
                let mut v2 = v;
                for k in 0..3 {
                    v2[k][p] = c * v[k][p] - s * v[k][q];
                    v2[k][q] = s * v[k][p] + c * v[k][q];
                }
                v = v2;
            }
        }

        // Sort eigenpairs by eigenvalue, descending.
        let mut pairs: Vec<(f64, Vec3)> = (0..3)
            .map(|i| (a[i][i], vec3(v[0][i], v[1][i], v[2][i])))
            .collect();
        pairs.sort_by(|l, r| r.0.total_cmp(&l.0));
        [pairs[0].1, pairs[1].1, pairs[2].1]
    }
}

/// An oriented bounding box: a centre, three orthonormal axes, and
/// half-extents along those axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obb {
    pub center: Vec3,
    pub axes: [Vec3; 3],
    pub half_extent: Vec3,
}

impl Obb {
    /// Fit an OBB to points using the covariance axes.
    pub fn fit(points: &[Vec3]) -> Obb {
        if points.is_empty() {
            return Obb {
                center: Vec3::ZERO,
                axes: [Vec3::X, Vec3::Y, Vec3::Z],
                half_extent: Vec3::ZERO,
            };
        }
        let (_, cov) = Sym3::covariance(points);
        let axes = cov.eigenvectors();
        // Project onto the axes to find the tight extents.
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for p in points {
            let q = vec3(p.dot(axes[0]), p.dot(axes[1]), p.dot(axes[2]));
            lo = lo.min(q);
            hi = hi.max(q);
        }
        let mid = (lo + hi) * 0.5;
        let center = axes[0] * mid.x + axes[1] * mid.y + axes[2] * mid.z;
        Obb {
            center,
            axes,
            half_extent: (hi - lo) * 0.5,
        }
    }

    /// Volume of the box.
    #[inline]
    pub fn volume(&self) -> f64 {
        8.0 * self.half_extent.x * self.half_extent.y * self.half_extent.z
    }

    /// `true` when the point lies inside or on the box.
    #[must_use]
    pub fn contains_point(&self, p: Vec3) -> bool {
        let d = p - self.center;
        for i in 0..3 {
            if d.dot(self.axes[i]).abs() > self.half_extent[i] + 1e-12 {
                return false;
            }
        }
        true
    }

    /// The smallest AABB enclosing this OBB.
    pub fn to_aabb(&self) -> Aabb {
        let mut r = Vec3::ZERO;
        for i in 0..3 {
            r += self.axes[i].abs() * self.half_extent[i];
        }
        Aabb::new(self.center - r, self.center + r)
    }

    /// Exact separating-axis intersection test between two OBBs
    /// (15 candidate axes: 3 + 3 face normals and 9 edge cross products).
    #[must_use]
    pub fn intersects(&self, rhs: &Obb) -> bool {
        self.separation_gap(rhs) <= 0.0
    }

    /// The largest separating gap between the two boxes over the 15 SAT
    /// axes: `0` when they intersect, otherwise a **lower bound** on the
    /// true distance between them (the gap along a unit axis can never
    /// exceed the Euclidean separation).
    pub fn separation_gap(&self, rhs: &Obb) -> f64 {
        let mut axes: Vec<Vec3> = Vec::with_capacity(15);
        axes.extend_from_slice(&self.axes);
        axes.extend_from_slice(&rhs.axes);
        for a in self.axes {
            for b in rhs.axes {
                let c = a.cross(b);
                if c.norm2() > 1e-12 {
                    if let Some(n) = c.normalized() {
                        axes.push(n);
                    }
                }
            }
        }
        let d = rhs.center - self.center;
        let mut best = f64::NEG_INFINITY;
        for l in axes {
            let ra = self.half_extent.x * self.axes[0].dot(l).abs()
                + self.half_extent.y * self.axes[1].dot(l).abs()
                + self.half_extent.z * self.axes[2].dot(l).abs();
            let rb = rhs.half_extent.x * rhs.axes[0].dot(l).abs()
                + rhs.half_extent.y * rhs.axes[1].dot(l).abs()
                + rhs.half_extent.z * rhs.axes[2].dot(l).abs();
            let gap = d.dot(l).abs() - (ra + rb);
            if gap > best {
                best = gap;
            }
        }
        best.max(0.0)
    }

    /// The 8 corners.
    pub fn corners(&self) -> [Vec3; 8] {
        let e = self.half_extent;
        let (u, v, w) = (self.axes[0] * e.x, self.axes[1] * e.y, self.axes[2] * e.z);
        let c = self.center;
        [
            c - u - v - w,
            c + u - v - w,
            c - u + v - w,
            c + u + v - w,
            c - u - v + w,
            c + u - v + w,
            c - u + v + w,
            c + u + v + w,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_axis_line() {
        let pts: Vec<Vec3> = (0..10).map(|i| vec3(i as f64, 0.0, 0.0)).collect();
        let (mean, cov) = Sym3::covariance(&pts);
        assert!((mean - vec3(4.5, 0.0, 0.0)).norm() < 1e-12);
        assert!(cov.xx > 0.0);
        assert_eq!(cov.yy, 0.0);
        assert_eq!(cov.zz, 0.0);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let pts: Vec<Vec3> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.1;
                vec3(3.0 * t, t, 0.2 * (t * 7.0).sin())
            })
            .collect();
        let (_, cov) = Sym3::covariance(&pts);
        let ax = cov.eigenvectors();
        for i in 0..3 {
            assert!((ax[i].norm() - 1.0).abs() < 1e-9, "axis {i} not unit");
            for j in (i + 1)..3 {
                assert!(ax[i].dot(ax[j]).abs() < 1e-9, "axes {i},{j} not orthogonal");
            }
        }
        // Dominant axis should be close to the line direction (3,1,~0).
        let dir = vec3(3.0, 1.0, 0.0).normalized().unwrap();
        assert!(ax[0].dot(dir).abs() > 0.99);
    }

    #[test]
    fn obb_tighter_than_aabb_for_diagonal_bar() {
        // A thin bar along the (1,1,1) diagonal with small jitter.
        let pts: Vec<Vec3> = (0..100)
            .map(|i| {
                let t = i as f64 * 0.1;
                let j = vec3(
                    0.01 * ((i * 37) % 7) as f64,
                    0.01 * ((i * 13) % 5) as f64,
                    0.01 * ((i * 29) % 3) as f64,
                );
                vec3(t, t, t) + j
            })
            .collect();
        let obb = Obb::fit(&pts);
        let aabb = Aabb::from_points(pts.iter().cloned());
        assert!(
            obb.volume() < aabb.volume() * 0.5,
            "OBB should be much tighter"
        );
        // Every point must be inside the OBB.
        for p in &pts {
            assert!(obb.contains_point(*p));
        }
        // The enclosing AABB of the OBB must contain the original AABB.
        let enc = obb.to_aabb();
        assert!(enc.contains_box(&aabb.inflate(-0.0)) || enc.union(&aabb) == enc);
    }

    #[test]
    fn obb_of_empty_and_single() {
        let o = Obb::fit(&[]);
        assert_eq!(o.half_extent, Vec3::ZERO);
        let o = Obb::fit(&[vec3(1.0, 2.0, 3.0)]);
        assert!(o.contains_point(vec3(1.0, 2.0, 3.0)));
        assert_eq!(o.half_extent, Vec3::ZERO);
    }

    #[test]
    fn sat_detects_separation_and_overlap() {
        let a = Obb {
            center: Vec3::ZERO,
            axes: [Vec3::X, Vec3::Y, Vec3::Z],
            half_extent: vec3(1.0, 1.0, 1.0),
        };
        // Overlapping axis-aligned boxes.
        let b = Obb {
            center: vec3(1.5, 0.0, 0.0),
            ..a
        };
        assert!(a.intersects(&b));
        assert_eq!(a.separation_gap(&b), 0.0);
        // Separated along x by 1.
        let c = Obb {
            center: vec3(3.0, 0.0, 0.0),
            ..a
        };
        assert!(!a.intersects(&c));
        assert!((a.separation_gap(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sat_rotated_boxes_cross_axis_case() {
        // Two unit boxes rotated 45° about z, corner-to-corner: only a
        // cross-product/diagonal axis separates tightly.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let rot = [vec3(s, s, 0.0), vec3(-s, s, 0.0), Vec3::Z];
        let a = Obb {
            center: Vec3::ZERO,
            axes: rot,
            half_extent: vec3(1.0, 1.0, 1.0),
        };
        let b = Obb {
            center: vec3(3.0, 0.0, 0.0),
            axes: rot,
            half_extent: vec3(1.0, 1.0, 1.0),
        };
        // Corners reach x = ±√2 from each centre: gap = 3 − 2√2 ≈ 0.17.
        assert!(!a.intersects(&b));
        let g = a.separation_gap(&b);
        assert!(g > 0.0 && g <= 3.0 - 2.0 * 2f64.sqrt() + 1e-9, "gap {g}");
        // Moving them together makes them intersect.
        let c = Obb {
            center: vec3(2.0, 0.0, 0.0),
            ..b
        };
        assert!(a.intersects(&c));
    }

    #[test]
    fn separation_gap_lower_bounds_corner_distance() {
        // The SAT gap never exceeds the true min distance between boxes
        // (checked against corner-pair distance, an upper bound on truth).
        let a = Obb {
            center: Vec3::ZERO,
            axes: [Vec3::X, Vec3::Y, Vec3::Z],
            half_extent: vec3(1.0, 0.5, 0.25),
        };
        for (cx, cy) in [(4.0, 1.0), (3.0, 3.0), (0.0, 5.0)] {
            let b = Obb {
                center: vec3(cx, cy, 0.5),
                ..a
            };
            let gap = a.separation_gap(&b);
            let min_corner = a
                .corners()
                .iter()
                .flat_map(|p| b.corners().into_iter().map(move |q| p.dist(q)))
                .fold(f64::INFINITY, f64::min);
            assert!(
                gap <= min_corner + 1e-9,
                "gap {gap} vs corners {min_corner}"
            );
        }
    }

    #[test]
    fn corners_inside_enclosing_aabb() {
        let pts: Vec<Vec3> = (0..30)
            .map(|i| vec3((i % 5) as f64, (i % 3) as f64, i as f64 * 0.1))
            .collect();
        let obb = Obb::fit(&pts);
        let bb = obb.to_aabb().inflate(1e-9);
        for c in obb.corners() {
            assert!(bb.contains_point(c));
        }
    }
}
