//! k-DOP conservative approximations (13 directions).
//!
//! The paper's §2.2 defines two approximation families: *progressive*
//! (subset — what PPVP produces) and *conservative* (superset). A k-DOP —
//! the intersection of slabs along fixed directions — is a conservative
//! approximation that is strictly tighter than the MBB (whose 3 axes are a
//! subset of the 13 directions), at 26 floats per object. Its properties
//! complement PPVP's:
//!
//! * if two objects' k-DOPs do not intersect, the objects do not intersect;
//! * the k-DOP gap along any unit direction lower-bounds the true distance.
//!
//! The query engine uses these for *conservative rejection*, the mirror
//! image of FPR's progressive early acceptance (see
//! `QueryConfig::conservative_prefilter`).

use crate::vec3::{vec3, Vec3};

/// Number of slab directions.
pub const K: usize = 13;

/// The 13 unit directions: 3 axes, 6 face diagonals, 4 body diagonals.
/// Shared by every [`Kdop`], so slabs are directly comparable.
pub fn directions() -> [Vec3; K] {
    let s2 = std::f64::consts::FRAC_1_SQRT_2;
    let s3 = 1.0 / 3f64.sqrt();
    [
        vec3(1.0, 0.0, 0.0),
        vec3(0.0, 1.0, 0.0),
        vec3(0.0, 0.0, 1.0),
        vec3(s2, s2, 0.0),
        vec3(s2, -s2, 0.0),
        vec3(s2, 0.0, s2),
        vec3(s2, 0.0, -s2),
        vec3(0.0, s2, s2),
        vec3(0.0, s2, -s2),
        vec3(s3, s3, s3),
        vec3(s3, s3, -s3),
        vec3(s3, -s3, s3),
        vec3(s3, -s3, -s3),
    ]
}

/// A discrete-orientation polytope: for each direction `dᵢ`, the interval
/// `[loᵢ, hiᵢ]` of the object's projections onto `dᵢ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kdop {
    pub lo: [f64; K],
    pub hi: [f64; K],
}

impl Kdop {
    /// The empty k-DOP (identity for [`Kdop::union`]).
    pub const EMPTY: Kdop = Kdop {
        lo: [f64::INFINITY; K],
        hi: [f64::NEG_INFINITY; K],
    };

    /// Tight k-DOP of a point set.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Kdop {
        let dirs = directions();
        let mut k = Kdop::EMPTY;
        for p in points {
            for (i, d) in dirs.iter().enumerate() {
                let t = p.dot(*d);
                k.lo[i] = k.lo[i].min(t);
                k.hi[i] = k.hi[i].max(t);
            }
        }
        k
    }

    /// `true` when no point was ever added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo[0] > self.hi[0]
    }

    /// Smallest k-DOP containing both.
    pub fn union(&self, rhs: &Kdop) -> Kdop {
        let mut out = *self;
        for i in 0..K {
            out.lo[i] = out.lo[i].min(rhs.lo[i]);
            out.hi[i] = out.hi[i].max(rhs.hi[i]);
        }
        out
    }

    /// `true` when the point lies inside every slab.
    #[must_use]
    pub fn contains_point(&self, p: Vec3) -> bool {
        let dirs = directions();
        for (i, d) in dirs.iter().enumerate() {
            let t = p.dot(*d);
            if t < self.lo[i] - 1e-12 || t > self.hi[i] + 1e-12 {
                return false;
            }
        }
        true
    }

    /// Conservative intersection test: `false` guarantees the underlying
    /// objects are disjoint (§2.2 property 1); `true` is inconclusive.
    #[must_use]
    pub fn intersects(&self, rhs: &Kdop) -> bool {
        for i in 0..K {
            if self.hi[i] < rhs.lo[i] || rhs.hi[i] < self.lo[i] {
                return false;
            }
        }
        true
    }

    /// A lower bound on the distance between the underlying objects
    /// (§2.2 property 2): the largest separating gap over the 13 unit
    /// directions. Zero when every slab pair overlaps.
    pub fn min_dist(&self, rhs: &Kdop) -> f64 {
        let mut best = 0.0f64;
        for i in 0..K {
            let gap = (rhs.lo[i] - self.hi[i]).max(self.lo[i] - rhs.hi[i]);
            if gap > best {
                best = gap;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube_points(lo: f64, hi: f64) -> Vec<Vec3> {
        let mut out = Vec::new();
        for &x in &[lo, hi] {
            for &y in &[lo, hi] {
                for &z in &[lo, hi] {
                    out.push(vec3(x, y, z));
                }
            }
        }
        out
    }

    #[test]
    fn directions_are_unit() {
        for d in directions() {
            assert!((d.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn contains_its_points() {
        let pts = vec![
            vec3(1.0, 2.0, 3.0),
            vec3(-1.0, 0.5, 2.0),
            vec3(0.0, 0.0, 0.0),
        ];
        let k = Kdop::from_points(pts.clone());
        for p in pts {
            assert!(k.contains_point(p));
        }
        assert!(!k.contains_point(vec3(10.0, 10.0, 10.0)));
    }

    #[test]
    fn axis_separated_cubes() {
        let a = Kdop::from_points(cube_points(0.0, 1.0));
        let b = Kdop::from_points(
            cube_points(3.0, 4.0)
                .into_iter()
                .map(|p| vec3(p.x, 0.5, 0.5)),
        );
        assert!(!a.intersects(&b));
        // Axis gap: 3.0 - 1.0 = 2.0.
        assert!((a.min_dist(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_separation_beats_aabb() {
        // Two unit cubes separated along the body diagonal: their AABB
        // MINDIST is sqrt(3)·gap_per_axis; a 13-DOP sees the diagonal slab
        // directly. Here cubes at origin and at (2,2,2).
        let a = Kdop::from_points(cube_points(0.0, 1.0));
        let b = Kdop::from_points(cube_points(2.0, 3.0));
        assert!(!a.intersects(&b));
        // True distance between cubes: |(2,2,2)-(1,1,1)| = sqrt(3).
        let bound = a.min_dist(&b);
        assert!(bound > 0.0 && bound <= 3f64.sqrt() + 1e-12);
        // The diagonal direction gives exactly sqrt(3) here.
        assert!((bound - 3f64.sqrt()).abs() < 1e-9, "bound {bound}");
    }

    #[test]
    fn min_dist_lower_bounds_true_distance() {
        // Deterministic pseudo-random point clusters: the k-DOP bound must
        // never exceed the true closest-pair distance.
        let mut seed = 0xD0Du64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for trial in 0..20 {
            let a: Vec<Vec3> = (0..12)
                .map(|_| vec3(next() * 2.0, next() * 2.0, next() * 2.0))
                .collect();
            let off = vec3(3.0 + trial as f64 * 0.1, 1.0, -0.5);
            let b: Vec<Vec3> = (0..12)
                .map(|_| vec3(next() * 2.0, next() * 2.0, next() * 2.0) + off)
                .collect();
            let true_d = a
                .iter()
                .flat_map(|p| b.iter().map(move |q| p.dist(*q)))
                .fold(f64::INFINITY, f64::min);
            let ka = Kdop::from_points(a.clone());
            let kb = Kdop::from_points(b.clone());
            assert!(
                ka.min_dist(&kb) <= true_d + 1e-9,
                "trial {trial}: bound {} exceeds true {true_d}",
                ka.min_dist(&kb)
            );
        }
    }

    #[test]
    fn union_and_empty() {
        let e = Kdop::EMPTY;
        assert!(e.is_empty());
        let a = Kdop::from_points(cube_points(0.0, 1.0));
        assert_eq!(e.union(&a), a);
        let b = Kdop::from_points(cube_points(2.0, 3.0));
        let u = a.union(&b);
        assert!(u.intersects(&a) && u.intersects(&b));
        assert!(u.contains_point(vec3(1.5, 1.5, 1.5)));
    }

    #[test]
    fn tighter_than_aabb_for_rotated_bar() {
        // A thin bar along (1,1,1): its AABB is a fat cube, its 13-DOP is a
        // thin diagonal slab. A probe point near the AABB corner but far
        // from the bar must be excluded by the DOP.
        let bar: Vec<Vec3> = (0..50).map(|i| Vec3::splat(i as f64 * 0.1)).collect();
        let k = Kdop::from_points(bar);
        let probe = vec3(4.9, 0.1, 0.1); // inside the AABB, far from the bar
        assert!(!k.contains_point(probe));
    }
}
