//! Distance computations between points, segments and triangles.
//!
//! Triangle–triangle distance is the hot kernel of within and
//! nearest-neighbour queries (paper §4.2–4.3): the distance between two
//! polyhedra equals the minimum over all face pairs.
//!
//! Closest-point formulations follow Ericson, *Real-Time Collision
//! Detection* (2005), §5.1.

use crate::eps::is_exactly_zero;
use crate::intersect::tri_tri_intersect;
use crate::tri::Triangle;
use crate::vec3::Vec3;

/// Closest point on segment `[a, b]` to point `p`.
pub fn closest_point_on_segment(p: Vec3, a: Vec3, b: Vec3) -> Vec3 {
    let ab = b - a;
    let denom = ab.norm2();
    if is_exactly_zero(denom) {
        return a;
    }
    let t = ((p - a).dot(ab) / denom).clamp(0.0, 1.0);
    a + ab * t
}

/// Squared distance from `p` to segment `[a, b]`.
#[inline]
pub fn point_segment_dist2(p: Vec3, a: Vec3, b: Vec3) -> f64 {
    p.dist2(closest_point_on_segment(p, a, b))
}

/// Closest point on a triangle to point `p` (Ericson §5.1.5, Voronoi-region
/// classification; robust for degenerate triangles via edge fallbacks).
pub fn closest_point_on_triangle(p: Vec3, t: &Triangle) -> Vec3 {
    let (a, b, c) = (t.a, t.b, t.c);
    let ab = b - a;
    let ac = c - a;
    let ap = p - a;

    let d1 = ab.dot(ap);
    let d2 = ac.dot(ap);
    if d1 <= 0.0 && d2 <= 0.0 {
        return a; // vertex region A
    }

    let bp = p - b;
    let d3 = ab.dot(bp);
    let d4 = ac.dot(bp);
    if d3 >= 0.0 && d4 <= d3 {
        return b; // vertex region B
    }

    let vc = d1 * d4 - d3 * d2;
    if vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0 {
        let denom = d1 - d3;
        let v = if is_exactly_zero(denom) {
            0.0
        } else {
            d1 / denom
        };
        return a + ab * v; // edge region AB
    }

    let cp = p - c;
    let d5 = ab.dot(cp);
    let d6 = ac.dot(cp);
    if d6 >= 0.0 && d5 <= d6 {
        return c; // vertex region C
    }

    let vb = d5 * d2 - d1 * d6;
    if vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0 {
        let denom = d2 - d6;
        let w = if is_exactly_zero(denom) {
            0.0
        } else {
            d2 / denom
        };
        return a + ac * w; // edge region AC
    }

    let va = d3 * d6 - d5 * d4;
    if va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0 {
        let denom = (d4 - d3) + (d5 - d6);
        let w = if is_exactly_zero(denom) {
            0.0
        } else {
            (d4 - d3) / denom
        };
        return b + (c - b) * w; // edge region BC
    }

    // Interior region.
    let denom = va + vb + vc;
    if denom.abs() < f64::MIN_POSITIVE {
        // Degenerate triangle — fall back to the closest edge.
        let q1 = closest_point_on_segment(p, a, b);
        let q2 = closest_point_on_segment(p, b, c);
        let q3 = closest_point_on_segment(p, c, a);
        let mut best = q1;
        if p.dist2(q2) < p.dist2(best) {
            best = q2;
        }
        if p.dist2(q3) < p.dist2(best) {
            best = q3;
        }
        return best;
    }
    let v = vb / denom;
    let w = vc / denom;
    a + ab * v + ac * w
}

/// Squared distance from point `p` to a triangle.
#[inline]
pub fn point_triangle_dist2(p: Vec3, t: &Triangle) -> f64 {
    p.dist2(closest_point_on_triangle(p, t))
}

/// Closest points between segments `[p1, q1]` and `[p2, q2]`
/// (Ericson §5.1.9). Returns `(point on first, point on second)`.
pub fn closest_points_segments(p1: Vec3, q1: Vec3, p2: Vec3, q2: Vec3) -> (Vec3, Vec3) {
    let d1 = q1 - p1;
    let d2 = q2 - p2;
    let r = p1 - p2;
    let a = d1.norm2();
    let e = d2.norm2();
    let f = d2.dot(r);

    let (s, t);
    if is_exactly_zero(a) && is_exactly_zero(e) {
        return (p1, p2);
    }
    if is_exactly_zero(a) {
        s = 0.0;
        t = (f / e).clamp(0.0, 1.0);
    } else {
        let c = d1.dot(r);
        if is_exactly_zero(e) {
            t = 0.0;
            s = (-c / a).clamp(0.0, 1.0);
        } else {
            let b = d1.dot(d2);
            let denom = a * e - b * b;
            let mut s_ = if is_exactly_zero(denom) {
                0.0
            } else {
                ((b * f - c * e) / denom).clamp(0.0, 1.0)
            };
            let mut t_ = (b * s_ + f) / e;
            if t_ < 0.0 {
                t_ = 0.0;
                s_ = (-c / a).clamp(0.0, 1.0);
            } else if t_ > 1.0 {
                t_ = 1.0;
                s_ = ((b - c) / a).clamp(0.0, 1.0);
            }
            s = s_;
            t = t_;
        }
    }
    (p1 + d1 * s, p2 + d2 * t)
}

/// Squared distance between two segments.
#[inline]
pub fn segment_segment_dist2(p1: Vec3, q1: Vec3, p2: Vec3, q2: Vec3) -> f64 {
    let (x, y) = closest_points_segments(p1, q1, p2, q2);
    x.dist2(y)
}

/// Squared distance between two triangles, **assuming they do not
/// intersect**. Minimum over the 6 vertex–triangle and 9 edge–edge pairs.
pub fn tri_tri_dist2_disjoint(t1: &Triangle, t2: &Triangle) -> f64 {
    let mut best = f64::INFINITY;
    for v in t1.vertices() {
        best = best.min(point_triangle_dist2(v, t2));
    }
    for v in t2.vertices() {
        best = best.min(point_triangle_dist2(v, t1));
    }
    for (a1, b1) in t1.edges() {
        for (a2, b2) in t2.edges() {
            best = best.min(segment_segment_dist2(a1, b1, a2, b2));
        }
    }
    best
}

/// Squared distance between two triangles (0 when they intersect).
pub fn tri_tri_dist2(t1: &Triangle, t2: &Triangle) -> f64 {
    let d2 = tri_tri_dist2_disjoint(t1, t2);
    if d2 > 0.0 && tri_tri_intersect(t1, t2) {
        return 0.0;
    }
    d2
}

/// Distance between two triangles.
#[inline]
pub fn tri_tri_dist(t1: &Triangle, t2: &Triangle) -> f64 {
    tri_tri_dist2(t1, t2).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::vec3;

    fn xy_tri() -> Triangle {
        Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(2.0, 0.0, 0.0),
            vec3(0.0, 2.0, 0.0),
        )
    }

    #[test]
    fn point_segment() {
        let a = vec3(0.0, 0.0, 0.0);
        let b = vec3(2.0, 0.0, 0.0);
        assert_eq!(
            closest_point_on_segment(vec3(1.0, 1.0, 0.0), a, b),
            vec3(1.0, 0.0, 0.0)
        );
        assert_eq!(closest_point_on_segment(vec3(-1.0, 1.0, 0.0), a, b), a);
        assert_eq!(closest_point_on_segment(vec3(9.0, 1.0, 0.0), a, b), b);
        assert_eq!(point_segment_dist2(vec3(1.0, 3.0, 4.0), a, b), 25.0);
        // Degenerate segment.
        assert_eq!(closest_point_on_segment(vec3(5.0, 0.0, 0.0), a, a), a);
    }

    #[test]
    fn point_triangle_regions() {
        let t = xy_tri();
        // Interior projection.
        assert_eq!(
            closest_point_on_triangle(vec3(0.5, 0.5, 3.0), &t),
            vec3(0.5, 0.5, 0.0)
        );
        // Vertex regions.
        assert_eq!(closest_point_on_triangle(vec3(-1.0, -1.0, 0.0), &t), t.a);
        assert_eq!(closest_point_on_triangle(vec3(3.0, -1.0, 0.0), &t), t.b);
        assert_eq!(closest_point_on_triangle(vec3(-1.0, 3.0, 0.0), &t), t.c);
        // Edge regions.
        assert_eq!(
            closest_point_on_triangle(vec3(1.0, -2.0, 0.0), &t),
            vec3(1.0, 0.0, 0.0)
        );
        assert_eq!(
            closest_point_on_triangle(vec3(-2.0, 1.0, 0.0), &t),
            vec3(0.0, 1.0, 0.0)
        );
        // Hypotenuse.
        let q = closest_point_on_triangle(vec3(2.0, 2.0, 0.0), &t);
        assert!((q - vec3(1.0, 1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn point_degenerate_triangle() {
        let t = Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(2.0, 0.0, 0.0),
        );
        let q = closest_point_on_triangle(vec3(1.0, 1.0, 0.0), &t);
        assert!((q - vec3(1.0, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn segment_segment_cases() {
        // Crossing (in projection), unit vertical gap.
        let d2 = segment_segment_dist2(
            vec3(-1.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(0.0, -1.0, 1.0),
            vec3(0.0, 1.0, 1.0),
        );
        assert!((d2 - 1.0).abs() < 1e-12);
        // Parallel segments.
        let d2 = segment_segment_dist2(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(0.0, 2.0, 0.0),
            vec3(1.0, 2.0, 0.0),
        );
        assert!((d2 - 4.0).abs() < 1e-12);
        // Endpoint to endpoint.
        let d2 = segment_segment_dist2(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 0.0, 0.0),
            vec3(3.0, 0.0, 0.0),
            vec3(4.0, 0.0, 0.0),
        );
        assert!((d2 - 4.0).abs() < 1e-12);
        // Degenerate (point) segments.
        let d2 = segment_segment_dist2(
            vec3(0.0, 0.0, 0.0),
            vec3(0.0, 0.0, 0.0),
            vec3(0.0, 3.0, 4.0),
            vec3(0.0, 3.0, 4.0),
        );
        assert!((d2 - 25.0).abs() < 1e-12);
    }

    #[test]
    fn tri_tri_parallel_planes() {
        let t1 = xy_tri();
        let t2 = Triangle::new(
            vec3(0.0, 0.0, 2.0),
            vec3(2.0, 0.0, 2.0),
            vec3(0.0, 2.0, 2.0),
        );
        assert!((tri_tri_dist(&t1, &t2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tri_tri_edge_edge_closest() {
        let t1 = xy_tri();
        // A triangle whose closest feature to t1's hypotenuse is an edge.
        let t2 = Triangle::new(
            vec3(2.0, 2.0, 1.0),
            vec3(3.0, 2.0, 1.0),
            vec3(2.0, 3.0, 1.0),
        );
        let expect = (0.5f64 + 0.5 + 1.0).sqrt(); // (1,1,0) -> (2,2,1) minus hypotenuse geometry
                                                  // Closest pair: point (1,1,0) on hypotenuse and vertex (2,2,1): dist = sqrt(1+1+1)
        let _ = expect;
        assert!((tri_tri_dist(&t1, &t2) - 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn tri_tri_intersecting_is_zero() {
        let t1 = xy_tri();
        let t2 = Triangle::new(
            vec3(0.5, 0.5, -1.0),
            vec3(0.5, 0.5, 1.0),
            vec3(1.5, 0.5, 0.0),
        );
        assert_eq!(tri_tri_dist(&t1, &t2), 0.0);
    }

    #[test]
    fn tri_tri_distance_symmetry() {
        let t1 = xy_tri();
        let t2 = Triangle::new(
            vec3(5.0, 1.0, 2.0),
            vec3(6.0, 1.5, 2.5),
            vec3(5.0, 3.0, 4.0),
        );
        assert!((tri_tri_dist(&t1, &t2) - tri_tri_dist(&t2, &t1)).abs() < 1e-12);
    }
}
