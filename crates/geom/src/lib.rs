//! # tripro-geom
//!
//! Geometry kernel for the 3DPro reproduction: floating-point vectors,
//! axis-aligned and oriented bounding boxes, triangle primitives,
//! intersection predicates, distance computations, exact integer
//! orientation tests on the quantisation grid, and point-in-polyhedron
//! containment.
//!
//! Everything in this crate is dependency-free and deterministic; it is the
//! substrate under the mesh compressor (`tripro-mesh`), the spatial indexes
//! (`tripro-index`) and the query engine (`tripro`).

pub mod aabb;
pub mod containment;
pub mod distance;
pub mod eps;
pub mod intersect;
pub mod ivec;
pub mod kdop;
pub mod obb;
pub mod tri;
pub mod vec3;

pub use aabb::{Aabb, DistRange};
pub use containment::{mesh_surface_area, mesh_volume, point_in_mesh};
pub use distance::{tri_tri_dist, tri_tri_dist2, tri_tri_dist2_disjoint};
pub use eps::{approx_eq, approx_zero, is_exactly, is_exactly_zero};
pub use intersect::{aabb_triangle, ray_triangle, segment_triangle, tri_tri_intersect, RayHit};
pub use ivec::{ivec3, orient3d, IVec3, Orientation, MAX_EXACT_COORD};
pub use kdop::{directions as kdop_directions, Kdop};
pub use obb::{Obb, Sym3};
pub use tri::Triangle;
pub use vec3::{vec3, Vec3};
