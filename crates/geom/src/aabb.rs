//! Axis-aligned bounding boxes and the MINDIST/MAXDIST distance ranges used
//! by the R-tree traversals (paper §4.2–4.3, following Roussopoulos et al.).

use crate::vec3::{vec3, Vec3};

/// An axis-aligned bounding box, possibly empty.
///
/// The empty box is represented by `lo > hi` on every axis and behaves as the
/// identity of [`Aabb::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub lo: Vec3,
    pub hi: Vec3,
}

impl Aabb {
    /// The empty box (identity for `union`, intersects nothing).
    pub const EMPTY: Aabb = Aabb {
        lo: vec3(f64::INFINITY, f64::INFINITY, f64::INFINITY),
        hi: vec3(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Box from explicit corners. `lo` must be component-wise ≤ `hi`
    /// for a non-empty box; no normalisation is performed.
    #[inline]
    pub const fn new(lo: Vec3, hi: Vec3) -> Self {
        Self { lo, hi }
    }

    /// Smallest box containing both corner points, in any order.
    #[inline]
    pub fn from_corners(a: Vec3, b: Vec3) -> Self {
        Self {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Degenerate box containing a single point.
    #[inline]
    pub fn from_point(p: Vec3) -> Self {
        Self { lo: p, hi: p }
    }

    /// Smallest box containing all points; `EMPTY` if the iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(pts: I) -> Self {
        let mut b = Self::EMPTY;
        for p in pts {
            b.expand(p);
        }
        b
    }

    /// `true` when the box contains no points.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y || self.lo.z > self.hi.z
    }

    /// Grow to include `p`.
    #[inline]
    pub fn expand(&mut self, p: Vec3) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Grow each side by `margin` (non-negative).
    #[inline]
    pub fn inflate(&self, margin: f64) -> Aabb {
        debug_assert!(margin >= 0.0);
        if self.is_empty() {
            return *self;
        }
        Aabb::new(self.lo - Vec3::splat(margin), self.hi + Vec3::splat(margin))
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, rhs: &Aabb) -> Aabb {
        Aabb {
            lo: self.lo.min(rhs.lo),
            hi: self.hi.max(rhs.hi),
        }
    }

    /// `true` when the boxes share at least one point (closed boxes:
    /// touching faces count as intersecting).
    #[inline]
    #[must_use]
    pub fn intersects(&self, rhs: &Aabb) -> bool {
        self.lo.x <= rhs.hi.x
            && rhs.lo.x <= self.hi.x
            && self.lo.y <= rhs.hi.y
            && rhs.lo.y <= self.hi.y
            && self.lo.z <= rhs.hi.z
            && rhs.lo.z <= self.hi.z
    }

    /// `true` when `rhs` is entirely inside `self` (closed containment).
    #[inline]
    #[must_use]
    pub fn contains_box(&self, rhs: &Aabb) -> bool {
        !rhs.is_empty()
            && self.lo.x <= rhs.lo.x
            && self.lo.y <= rhs.lo.y
            && self.lo.z <= rhs.lo.z
            && self.hi.x >= rhs.hi.x
            && self.hi.y >= rhs.hi.y
            && self.hi.z >= rhs.hi.z
    }

    /// `true` when the point is inside or on the boundary.
    #[inline]
    #[must_use]
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.lo.x <= p.x
            && p.x <= self.hi.x
            && self.lo.y <= p.y
            && p.y <= self.hi.y
            && self.lo.z <= p.z
            && p.z <= self.hi.z
    }

    /// Centre point (undefined for empty boxes).
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    /// Side lengths.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.hi - self.lo
    }

    /// Length of the main diagonal. This is the MAXDIST contribution of a
    /// single box per the paper's within-query bound.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.extent().norm()
        }
    }

    /// Surface area (used by tree build heuristics).
    #[inline]
    pub fn surface_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Squared minimum distance between the boxes (0 when they intersect).
    #[inline]
    pub fn min_dist2(&self, rhs: &Aabb) -> f64 {
        let mut d2 = 0.0;
        for axis in 0..3 {
            let gap = (rhs.lo[axis] - self.hi[axis]).max(self.lo[axis] - rhs.hi[axis]);
            if gap > 0.0 {
                d2 += gap * gap;
            }
        }
        d2
    }

    /// Minimum distance between the boxes: the paper's `MINDIST` — the
    /// infimum of distances between any point pair covered by the two boxes.
    #[inline]
    pub fn min_dist(&self, rhs: &Aabb) -> f64 {
        self.min_dist2(rhs).sqrt()
    }

    /// The paper's `MAXDIST`: the diagonal of the union of the two MBBs — a
    /// guaranteed upper bound (supremum) on the distance between any point of
    /// one object and any point of the other when both objects are inside
    /// their MBBs.
    #[inline]
    pub fn max_dist(&self, rhs: &Aabb) -> f64 {
        self.union(rhs).diagonal()
    }

    /// Squared minimum distance from a point to the box (0 inside).
    #[inline]
    pub fn min_dist2_point(&self, p: Vec3) -> f64 {
        let mut d2 = 0.0;
        for axis in 0..3 {
            let gap = (self.lo[axis] - p[axis]).max(p[axis] - self.hi[axis]);
            if gap > 0.0 {
                d2 += gap * gap;
            }
        }
        d2
    }

    /// Maximum distance from a point to any point in the box.
    #[inline]
    pub fn max_dist_point(&self, p: Vec3) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut d2 = 0.0;
        for axis in 0..3 {
            let g = (p[axis] - self.lo[axis])
                .abs()
                .max((p[axis] - self.hi[axis]).abs());
            d2 += g * g;
        }
        d2.sqrt()
    }

    /// Distance range `[MINDIST, MAXDIST]` between two boxes (paper §4.2).
    #[inline]
    pub fn dist_range(&self, rhs: &Aabb) -> DistRange {
        DistRange {
            min: self.min_dist(rhs),
            max: self.max_dist(rhs),
        }
    }

    /// The 8 corner points (non-empty boxes only).
    pub fn corners(&self) -> [Vec3; 8] {
        let (l, h) = (self.lo, self.hi);
        [
            vec3(l.x, l.y, l.z),
            vec3(h.x, l.y, l.z),
            vec3(l.x, h.y, l.z),
            vec3(h.x, h.y, l.z),
            vec3(l.x, l.y, h.z),
            vec3(h.x, l.y, h.z),
            vec3(l.x, h.y, h.z),
            vec3(h.x, h.y, h.z),
        ]
    }
}

/// An interval `[min, max]` bounding the (unknown) exact distance between two
/// objects — the progressive-refinement state for within and NN queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistRange {
    pub min: f64,
    pub max: f64,
}

impl DistRange {
    /// The degenerate range `[d, d]` of an exactly-known distance.
    #[inline]
    pub fn exact(d: f64) -> Self {
        Self { min: d, max: d }
    }

    /// `true` when this range is certainly closer than `rhs`
    /// (its supremum is below `rhs`'s infimum).
    #[inline]
    #[must_use]
    pub fn certainly_closer_than(&self, rhs: &DistRange) -> bool {
        self.max < rhs.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::from_corners(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn empty_behaviour() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert!(!e.intersects(&unit()));
        assert_eq!(e.union(&unit()), unit());
        assert_eq!(e.volume(), 0.0);
        assert_eq!(e.diagonal(), 0.0);
        assert_eq!(e.surface_area(), 0.0);
    }

    #[test]
    fn from_points_and_expand() {
        let b = Aabb::from_points([vec3(1.0, 5.0, -2.0), vec3(-1.0, 0.0, 4.0)]);
        assert_eq!(b.lo, vec3(-1.0, 0.0, -2.0));
        assert_eq!(b.hi, vec3(1.0, 5.0, 4.0));
        let mut c = b;
        c.expand(vec3(10.0, 0.0, 0.0));
        assert_eq!(c.hi.x, 10.0);
    }

    #[test]
    fn intersection_and_containment() {
        let a = unit();
        let b = Aabb::from_corners(vec3(0.5, 0.5, 0.5), vec3(2.0, 2.0, 2.0));
        let c = Aabb::from_corners(vec3(2.0, 2.0, 2.0), vec3(3.0, 3.0, 3.0));
        let d = Aabb::from_corners(vec3(0.25, 0.25, 0.25), vec3(0.75, 0.75, 0.75));
        assert!(a.intersects(&b));
        assert!(b.intersects(&c), "touching corners count as intersecting");
        assert!(!a.intersects(&c));
        assert!(a.contains_box(&d));
        assert!(!a.contains_box(&b));
        assert!(a.contains_point(vec3(1.0, 1.0, 1.0)));
        assert!(!a.contains_point(vec3(1.0, 1.0, 1.1)));
    }

    #[test]
    fn measures() {
        let b = Aabb::from_corners(Vec3::ZERO, vec3(1.0, 2.0, 3.0));
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.surface_area(), 2.0 * (2.0 + 6.0 + 3.0));
        assert!((b.diagonal() - 14f64.sqrt()).abs() < 1e-12);
        assert_eq!(b.center(), vec3(0.5, 1.0, 1.5));
        assert_eq!(b.extent(), vec3(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_dist_between_boxes() {
        let a = unit();
        let b = Aabb::from_corners(vec3(2.0, 0.0, 0.0), vec3(3.0, 1.0, 1.0));
        assert_eq!(a.min_dist(&b), 1.0);
        // Diagonal separation.
        let c = Aabb::from_corners(vec3(2.0, 2.0, 2.0), vec3(3.0, 3.0, 3.0));
        assert!((a.min_dist(&c) - 3f64.sqrt()).abs() < 1e-12);
        // Overlapping boxes have distance 0.
        let d = Aabb::from_corners(vec3(0.5, 0.5, 0.5), vec3(4.0, 4.0, 4.0));
        assert_eq!(a.min_dist(&d), 0.0);
    }

    #[test]
    fn max_dist_is_union_diagonal() {
        let a = unit();
        let b = Aabb::from_corners(vec3(2.0, 0.0, 0.0), vec3(3.0, 1.0, 1.0));
        let expected = (9.0f64 + 1.0 + 1.0).sqrt();
        assert!((a.max_dist(&b) - expected).abs() < 1e-12);
        // MAXDIST must always dominate MINDIST.
        assert!(a.max_dist(&b) >= a.min_dist(&b));
    }

    #[test]
    fn point_distances() {
        let b = unit();
        assert_eq!(b.min_dist2_point(vec3(0.5, 0.5, 0.5)), 0.0);
        assert_eq!(b.min_dist2_point(vec3(2.0, 0.5, 0.5)), 1.0);
        assert!((b.max_dist_point(Vec3::ZERO) - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dist_range_ordering() {
        let near = DistRange { min: 0.0, max: 1.0 };
        let far = DistRange { min: 2.0, max: 5.0 };
        assert!(near.certainly_closer_than(&far));
        assert!(!far.certainly_closer_than(&near));
        let overlapping = DistRange { min: 0.5, max: 3.0 };
        assert!(!near.certainly_closer_than(&overlapping));
        assert_eq!(DistRange::exact(2.0), DistRange { min: 2.0, max: 2.0 });
    }

    #[test]
    fn inflate_and_corners() {
        let b = unit().inflate(1.0);
        assert_eq!(b.lo, vec3(-1.0, -1.0, -1.0));
        assert_eq!(b.hi, vec3(2.0, 2.0, 2.0));
        let cs = unit().corners();
        assert_eq!(cs.len(), 8);
        assert!(cs.iter().all(|c| unit().contains_point(*c)));
    }
}
