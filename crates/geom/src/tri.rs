//! Triangle primitive.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// A triangle given by its three corner points, oriented counter-clockwise
/// when seen from the outer side (right-hand rule, paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    pub a: Vec3,
    pub b: Vec3,
    pub c: Vec3,
}

impl Triangle {
    #[inline]
    pub const fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Self { a, b, c }
    }

    /// Non-normalised outward normal (`(b-a) × (c-a)`), with magnitude equal
    /// to twice the triangle area.
    #[inline]
    pub fn scaled_normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// Unit outward normal, `None` for degenerate triangles.
    #[inline]
    pub fn normal(&self) -> Option<Vec3> {
        self.scaled_normal().normalized()
    }

    /// Triangle area.
    #[inline]
    pub fn area(&self) -> f64 {
        0.5 * self.scaled_normal().norm()
    }

    /// Centroid.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Bounding box.
    #[inline]
    pub fn aabb(&self) -> Aabb {
        Aabb::from_points([self.a, self.b, self.c])
    }

    /// `true` when the triangle has (near-)zero area.
    #[inline]
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        let n2 = self.scaled_normal().norm2();
        // Compare against the scale of the edges to stay unit-independent.
        let s = (self.b - self.a).norm2().max((self.c - self.a).norm2());
        n2 <= s * s * 1e-24
    }

    /// Corner points as an array.
    #[inline]
    pub fn vertices(&self) -> [Vec3; 3] {
        [self.a, self.b, self.c]
    }

    /// The three edges as (start, end) pairs, in CCW order.
    #[inline]
    pub fn edges(&self) -> [(Vec3, Vec3); 3] {
        [(self.a, self.b), (self.b, self.c), (self.c, self.a)]
    }

    /// Triangle with reversed orientation (flipped normal).
    #[inline]
    pub fn flipped(&self) -> Triangle {
        Triangle::new(self.a, self.c, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::vec3;

    fn t() -> Triangle {
        Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(2.0, 0.0, 0.0),
            vec3(0.0, 2.0, 0.0),
        )
    }

    #[test]
    fn normal_and_area() {
        assert_eq!(t().normal(), Some(vec3(0.0, 0.0, 1.0)));
        assert_eq!(t().area(), 2.0);
        assert_eq!(t().flipped().normal(), Some(vec3(0.0, 0.0, -1.0)));
    }

    #[test]
    fn centroid_and_aabb() {
        let c = t().centroid();
        assert!((c - vec3(2.0 / 3.0, 2.0 / 3.0, 0.0)).norm() < 1e-12);
        let bb = t().aabb();
        assert_eq!(bb.lo, vec3(0.0, 0.0, 0.0));
        assert_eq!(bb.hi, vec3(2.0, 2.0, 0.0));
    }

    #[test]
    fn degeneracy() {
        assert!(!t().is_degenerate());
        let d = Triangle::new(
            vec3(0.0, 0.0, 0.0),
            vec3(1.0, 1.0, 1.0),
            vec3(2.0, 2.0, 2.0),
        );
        assert!(d.is_degenerate());
        let p = Triangle::new(Vec3::ZERO, Vec3::ZERO, Vec3::ZERO);
        assert!(p.is_degenerate());
    }

    #[test]
    fn edges_are_ccw_cycle() {
        let e = t().edges();
        assert_eq!(e[0].1, e[1].0);
        assert_eq!(e[1].1, e[2].0);
        assert_eq!(e[2].1, e[0].0);
    }
}
