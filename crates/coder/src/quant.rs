//! Uniform grid quantisation of coordinates.
//!
//! 3DPro snaps all mesh coordinates onto a per-object uniform grid before
//! compression ("adaptive quantization", paper §6.2): the grid adapts to
//! each object's bounding box, so small objects keep high precision. All
//! geometric predicates used by PPVP then run exactly on the integer grid.

use crate::varint::{write_f64, ByteReader, DecodeError};

/// Parameters of a uniform quantisation grid over an axis-aligned box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    /// Lower corner of the quantised region.
    pub lo: [f64; 3],
    /// Grid step per axis (strictly positive).
    pub step: [f64; 3],
    /// Bits per axis; grid indices lie in `[0, 2^bits - 1]`.
    pub bits: u32,
}

impl Quantizer {
    /// Build a grid with `bits` per axis covering `[lo, hi]`.
    ///
    /// Degenerate axes (zero extent) get a unit step so quantisation is the
    /// identity on that axis. `bits` must be in `[1, 30]` so grid indices
    /// stay within the exact-predicate bound of `tripro-geom`.
    pub fn new(lo: [f64; 3], hi: [f64; 3], bits: u32) -> Self {
        assert!(
            (1..=30).contains(&bits),
            "bits must be in 1..=30, got {bits}"
        );
        let cells = ((1u64 << bits) - 1) as f64;
        let mut step = [0.0; 3];
        for a in 0..3 {
            let extent = hi[a] - lo[a];
            assert!(extent >= 0.0, "hi must dominate lo");
            step[a] = if extent > 0.0 { extent / cells } else { 1.0 };
        }
        Self { lo, step, bits }
    }

    /// Largest representable grid index.
    #[inline]
    pub fn max_index(&self) -> i64 {
        (1i64 << self.bits) - 1
    }

    /// Snap a coordinate to its grid index (clamped to the representable
    /// range, so out-of-box inputs degrade gracefully).
    #[inline]
    pub fn quantize_axis(&self, axis: usize, x: f64) -> i64 {
        let q = ((x - self.lo[axis]) / self.step[axis]).round() as i64;
        q.clamp(0, self.max_index())
    }

    /// Grid index back to the coordinate of the cell centre.
    #[inline]
    pub fn dequantize_axis(&self, axis: usize, q: i64) -> f64 {
        self.lo[axis] + q as f64 * self.step[axis]
    }

    /// Quantise a point.
    #[inline]
    pub fn quantize(&self, p: [f64; 3]) -> [i64; 3] {
        [
            self.quantize_axis(0, p[0]),
            self.quantize_axis(1, p[1]),
            self.quantize_axis(2, p[2]),
        ]
    }

    /// Dequantise a grid point.
    #[inline]
    pub fn dequantize(&self, q: [i64; 3]) -> [f64; 3] {
        [
            self.dequantize_axis(0, q[0]),
            self.dequantize_axis(1, q[1]),
            self.dequantize_axis(2, q[2]),
        ]
    }

    /// Worst-case rounding error, i.e. half the grid-cell diagonal.
    pub fn max_error(&self) -> f64 {
        0.5 * (self.step[0] * self.step[0]
            + self.step[1] * self.step[1]
            + self.step[2] * self.step[2])
            .sqrt()
    }

    /// Serialise to bytes (paired with [`Quantizer::read`]).
    pub fn write(&self, out: &mut Vec<u8>) {
        out.push(self.bits as u8);
        for a in 0..3 {
            write_f64(out, self.lo[a]);
        }
        for a in 0..3 {
            write_f64(out, self.step[a]);
        }
    }

    /// Deserialise from a reader.
    pub fn read(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let bits = r.read_byte()? as u32;
        if !(1..=30).contains(&bits) {
            return Err(DecodeError);
        }
        let mut lo = [0.0; 3];
        let mut step = [0.0; 3];
        for v in &mut lo {
            *v = r.read_f64()?;
        }
        for v in &mut step {
            *v = r.read_f64()?;
            // Reject zero, negative, NaN, and infinite steps.
            if !(v.is_finite() && *v > 0.0) {
                return Err(DecodeError);
            }
        }
        Ok(Self { lo, step, bits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_stable() {
        let q = Quantizer::new([0.0, -1.0, 10.0], [1.0, 1.0, 20.0], 12);
        let p = [0.3333, 0.7072, 15.5];
        let g = q.quantize(p);
        let p2 = q.dequantize(g);
        // Quantising the dequantised point must be a fixed point.
        assert_eq!(q.quantize(p2), g);
        // And the error is bounded.
        let err = ((p[0] - p2[0]).powi(2) + (p[1] - p2[1]).powi(2) + (p[2] - p2[2]).powi(2)).sqrt();
        assert!(
            err <= q.max_error() * (1.0 + 1e-9),
            "err={err} max={}",
            q.max_error()
        );
    }

    #[test]
    fn corners_are_exact() {
        let q = Quantizer::new([-5.0, 0.0, 2.0], [5.0, 4.0, 3.0], 16);
        assert_eq!(q.quantize([-5.0, 0.0, 2.0]), [0, 0, 0]);
        let m = q.max_index();
        let g = q.quantize([5.0, 4.0, 3.0]);
        assert_eq!(g, [m, m, m]);
        let back = q.dequantize(g);
        assert!((back[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_out_of_range() {
        let q = Quantizer::new([0.0; 3], [1.0; 3], 8);
        assert_eq!(q.quantize([-3.0, 0.5, 9.0])[0], 0);
        assert_eq!(q.quantize([-3.0, 0.5, 9.0])[2], q.max_index());
    }

    #[test]
    fn degenerate_axis() {
        // Flat object in z.
        let q = Quantizer::new([0.0, 0.0, 5.0], [1.0, 1.0, 5.0], 10);
        let g = q.quantize([0.5, 0.5, 5.0]);
        assert_eq!(g[2], 0);
        assert_eq!(q.dequantize(g)[2], 5.0);
    }

    #[test]
    fn more_bits_less_error() {
        let lo = [0.0; 3];
        let hi = [100.0; 3];
        let e8 = Quantizer::new(lo, hi, 8).max_error();
        let e16 = Quantizer::new(lo, hi, 16).max_error();
        assert!(e16 < e8 / 100.0);
    }

    #[test]
    fn serialisation_roundtrip() {
        let q = Quantizer::new([0.25, -3.5, 1e6], [1.75, 4.5, 2e6], 14);
        let mut buf = Vec::new();
        q.write(&mut buf);
        let mut r = ByteReader::new(&buf);
        let q2 = Quantizer::read(&mut r).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn bad_serialised_bits_rejected() {
        let mut buf = vec![31u8];
        buf.extend([0u8; 48]);
        assert!(Quantizer::read(&mut ByteReader::new(&buf)).is_err());
    }

    #[test]
    #[should_panic]
    fn zero_bits_panics() {
        Quantizer::new([0.0; 3], [1.0; 3], 0);
    }

    #[test]
    fn indices_fit_exact_predicate_bound() {
        let q = Quantizer::new([0.0; 3], [1.0; 3], 30);
        assert!(q.max_index() <= tripro_geom_max());
    }

    // Mirror of tripro_geom::MAX_EXACT_COORD without a circular dev-dep.
    fn tripro_geom_max() -> i64 {
        1 << 30
    }
}
