//! Carry-aware byte range coder (LZMA-style) with an adaptive order-0
//! byte model.
//!
//! This is the entropy-coding backend of the PPVP compressed format: the
//! base-mesh connectivity, ring references and quantised coordinate deltas
//! are serialised as byte streams and squeezed through this coder
//! (the paper applies "entropy encoding and adaptive quantization" from the
//! PPMC line of work, §6.2).

use crate::varint::DecodeError;

const TOP: u32 = 1 << 24;
const BOT: u32 = 1 << 16;

/// Streaming carryless range encoder (Subbotin's construction: encoder and
/// decoder mirror the same `(low, range)` state, so no carry propagation is
/// needed).
pub struct RangeEncoder {
    low: u32,
    range: u32,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            out: Vec::new(),
        }
    }

    /// Encode a symbol occupying `[start, start+size)` out of `total`
    /// cumulative frequency. `total` must be ≤ 2¹⁶ so `range/total` never
    /// collapses to zero.
    pub fn encode(&mut self, start: u32, size: u32, total: u32) {
        debug_assert!(size > 0 && start + size <= total && total <= BOT);
        let r = self.range / total;
        self.low = self.low.wrapping_add(start * r);
        self.range = r * size;
        loop {
            if (self.low ^ self.low.wrapping_add(self.range)) < TOP {
                // Top byte settled: emit it.
            } else if self.range < BOT {
                // Underflow: pin the range to the current 64 KiB window.
                self.range = BOT - (self.low & (BOT - 1));
            } else {
                break;
            }
            self.out.push((self.low >> 24) as u8);
            self.low <<= 8;
            self.range <<= 8;
        }
    }

    /// Flush pending state and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..4 {
            self.out.push((self.low >> 24) as u8);
            self.low <<= 8;
        }
        self.out
    }
}

/// Streaming range decoder over a byte slice, mirroring [`RangeEncoder`].
pub struct RangeDecoder<'a> {
    low: u32,
    code: u32,
    range: u32,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    pub fn new(buf: &'a [u8]) -> Result<Self, DecodeError> {
        let mut d = Self {
            low: 0,
            code: 0,
            range: u32::MAX,
            buf,
            pos: 0,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        Ok(d)
    }

    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zeros; the arithmetic stream is
        // self-terminating given the symbol count is stored out of band.
        let b = self.buf.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Cumulative-frequency value of the next symbol, in `[0, total)`.
    pub fn decode_freq(&mut self, total: u32) -> u32 {
        let r = self.range / total;
        (self.code.wrapping_sub(self.low) / r).min(total - 1)
    }

    /// Commit the decode of the symbol at `[start, start+size)` of `total`.
    pub fn decode_update(&mut self, start: u32, size: u32, total: u32) {
        let r = self.range / total;
        self.low = self.low.wrapping_add(start * r);
        self.range = r * size;
        loop {
            if (self.low ^ self.low.wrapping_add(self.range)) < TOP {
            } else if self.range < BOT {
                self.range = BOT - (self.low & (BOT - 1));
            } else {
                break;
            }
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.low <<= 8;
            self.range <<= 8;
        }
    }
}

const MAX_TOTAL: u32 = 1 << 16;
const INCREMENT: u32 = 24;

/// Adaptive order-0 frequency model over byte symbols.
///
/// Frequencies start uniform and adapt with every coded symbol; when the
/// total crosses 2¹⁶ all counts are halved (floor at 1). Identical evolution
/// on both sides keeps encoder and decoder in lockstep.
pub struct ByteModel {
    freq: [u32; 256],
    total: u32,
}

impl Default for ByteModel {
    fn default() -> Self {
        Self::new()
    }
}

impl ByteModel {
    pub fn new() -> Self {
        Self {
            freq: [1; 256],
            total: 256,
        }
    }

    fn bump(&mut self, sym: u8) {
        self.freq[sym as usize] += INCREMENT;
        self.total += INCREMENT;
        if self.total > MAX_TOTAL {
            self.total = 0;
            for f in &mut self.freq {
                *f = (*f).div_ceil(2);
                self.total += *f;
            }
        }
    }

    pub fn encode(&mut self, enc: &mut RangeEncoder, sym: u8) {
        let start: u32 = self.freq[..sym as usize].iter().sum();
        enc.encode(start, self.freq[sym as usize], self.total);
        self.bump(sym);
    }

    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u8 {
        let target = dec.decode_freq(self.total);
        let mut cum = 0u32;
        let mut sym = 0usize;
        while cum + self.freq[sym] <= target {
            cum += self.freq[sym];
            sym += 1;
        }
        dec.decode_update(cum, self.freq[sym], self.total);
        self.bump(sym as u8);
        sym as u8
    }
}

/// Compress a byte slice with an adaptive order-0 model.
///
/// Framing: varint length, then the arithmetic stream.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    crate::varint::write_u64(&mut out, data.len() as u64);
    let mut enc = RangeEncoder::new();
    let mut model = ByteModel::new();
    for &b in data {
        model.encode(&mut enc, b);
    }
    out.extend_from_slice(&enc.finish());
    out
}

/// Inverse of [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut r = crate::varint::ByteReader::new(data);
    let n = r.read_usize()?;
    // Guard against absurd lengths from corrupt input.
    if n > data.len().saturating_mul(256).saturating_add(1 << 20) {
        return Err(DecodeError);
    }
    let mut dec = RangeDecoder::new(&data[r.position()..])?;
    let mut model = ByteModel::new();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(model.decode(&mut dec));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn empty() {
        roundtrip(&[]);
    }

    #[test]
    fn single_bytes() {
        roundtrip(&[0]);
        roundtrip(&[255]);
        roundtrip(&[42]);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn repetitive_compresses_well() {
        let data = vec![7u8; 10_000];
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 20,
            "10k identical bytes -> {} bytes",
            c.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        let mut data = Vec::new();
        let mut x: u64 = 12345;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // 90% zeros, 10% small values.
            let b = if x % 10 == 0 { (x >> 32) as u8 % 16 } else { 0 };
            data.push(b);
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 2);
        roundtrip(&data);
    }

    #[test]
    fn incompressible_random_survives() {
        let mut data = Vec::new();
        let mut x: u64 = 987654321;
        for _ in 0..8_192 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            data.push((x >> 33) as u8);
        }
        let c = compress(&data);
        // Random bytes must not blow up by more than a tiny factor.
        assert!(c.len() < data.len() + data.len() / 8 + 64);
        roundtrip(&data);
    }

    #[test]
    fn long_runs_of_each_value() {
        let mut data = Vec::new();
        for v in [0u8, 1, 128, 255, 3] {
            data.extend(std::iter::repeat(v).take(997));
        }
        roundtrip(&data);
    }

    #[test]
    fn corrupt_header_is_error() {
        assert!(decompress(&[]).is_err());
        // Length says 100 bytes but stream is empty.
        assert!(decompress(&[100]).is_err() || decompress(&[100]).unwrap().len() == 100);
    }

    #[test]
    fn adaptivity_beats_static_on_shifting_distribution() {
        // First half all 'a', second half all 'b': adaptive model should get
        // close to 0 bits/symbol on both halves.
        let mut data = vec![b'a'; 5000];
        data.extend(vec![b'b'; 5000]);
        let c = compress(&data);
        // ~0.5 bits/symbol once the model has adapted (vs 8 raw).
        assert!(
            c.len() < 800,
            "expected strong compression, got {}",
            c.len()
        );
        roundtrip(&data);
    }
}
