//! # tripro-coder
//!
//! Bit-level substrate of the PPVP compressed mesh format: varints, ZigZag,
//! an adaptive range (arithmetic) coder, and the uniform grid quantiser.
//!
//! The paper builds on the PPMC codebase's "spatial compression, entropy
//! encoding, and adaptive quantization" (§6.2); this crate provides those
//! three ingredients from scratch.

pub mod quant;
pub mod range;
pub mod varint;

pub use quant::Quantizer;
pub use range::{compress, decompress, ByteModel, RangeDecoder, RangeEncoder};
pub use varint::{unzigzag, write_f64, write_i64, write_u64, zigzag, ByteReader, DecodeError};
