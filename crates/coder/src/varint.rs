//! LEB128 variable-length integers and ZigZag signed mapping.
//!
//! Removal events in the PPVP stream reference ring vertices as small id
//! deltas; varints keep those references compact before entropy coding.

/// Append `v` as an unsigned LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `v` with the ZigZag mapping (small magnitudes stay small).
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Map a signed integer to unsigned: 0, -1, 1, -2, … → 0, 1, 2, 3, …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Sequential reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Error returned when a read runs past the end of the buffer or a varint is
/// malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed or truncated encoded stream")
    }
}

impl std::error::Error for DecodeError {}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn read_byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError)?;
        self.pos += 1;
        Ok(b)
    }

    pub fn read_exact(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_byte()?;
            if shift >= 64 {
                return Err(DecodeError);
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub fn read_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(unzigzag(self.read_u64()?))
    }

    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        let v = self.read_u64()?;
        u32::try_from(v).map_err(|_| DecodeError)
    }

    pub fn read_usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| DecodeError)
    }

    /// Read a little-endian f64 (used only in uncompressed headers).
    pub fn read_f64(&mut self) -> Result<f64, DecodeError> {
        let s = self.read_exact(8)?;
        let bytes: [u8; 8] = s.try_into().map_err(|_| DecodeError)?;
        Ok(f64::from_le_bytes(bytes))
    }
}

/// Append a little-endian f64.
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for v in values {
            write_u64(&mut buf, v);
        }
        let mut r = ByteReader::new(&buf);
        for v in values {
            assert_eq!(r.read_u64().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn i64_roundtrip() {
        let values = [0i64, -1, 1, -64, 63, -65, 64, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        for v in values {
            write_i64(&mut buf, v);
        }
        let mut r = ByteReader::new(&buf);
        for v in values {
            assert_eq!(r.read_i64().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in -100..100i64 {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_is_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 40);
        buf.pop();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_u64(), Err(DecodeError));
    }

    #[test]
    fn overlong_is_error() {
        // 11 continuation bytes: shift exceeds 64.
        let buf = vec![0x80u8; 10]
            .into_iter()
            .chain([1u8])
            .collect::<Vec<_>>();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_u64(), Err(DecodeError));
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf = Vec::new();
        write_f64(&mut buf, -1234.5678);
        write_f64(&mut buf, f64::INFINITY);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_f64().unwrap(), -1234.5678);
        assert_eq!(r.read_f64().unwrap(), f64::INFINITY);
    }

    #[test]
    fn read_exact_and_position() {
        let buf = [1u8, 2, 3, 4, 5];
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.read_exact(2).unwrap(), &[1, 2]);
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 3);
        assert!(r.read_exact(4).is_err());
    }
}
